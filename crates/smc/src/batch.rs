//! Bit-sliced batched GMW: 64 independent verifications per circuit pass.
//!
//! # Bit-slicing layout
//!
//! The serial engine ([`crate::gmw::run_gmw`]) holds one `bool` per
//! party per wire. This module packs **64 independent executions of the
//! same circuit** ("lanes") into `u64` words: bit `k` of every share
//! word belongs to lane `k`, so a single XOR/AND/NOT machine
//! instruction evaluates the gate for all lanes at once. A [`BitBatch`]
//! is one such lane-packed word plus its live lane count; partially
//! filled batches mask the dead upper bits so they can never leak into
//! outputs.
//!
//! The AND-triple dealer is word-wide too: one `u64` draw from the DRBG
//! yields 64 lanes' worth of triple bits, where the serial engine burns
//! one full HMAC-DRBG `chance(0.5)` call (one buffered `u64`) *per
//! lane per bit*. That — plus the word-wide gate ops — is where the
//! ≥10× batched throughput in `benches/smc.rs` comes from.
//!
//! # Determinism proof sketch (why lanes match serial runs exactly)
//!
//! A GMW execution's *reconstructed outputs* are independent of the
//! dealer/sharing randomness: every random bit `r` injected while
//! sharing a value enters an even number of party shares, so the XOR
//! reconstruction cancels it and only the plaintext gate semantics
//! survive (inductively over the topologically ordered gates:
//! Input/Const reconstruct to the plaintext bit, XOR/NOT are linear,
//! and the Beaver identity `z = c ⊕ d·b ⊕ e·a ⊕ d·e` with
//! `d = x ⊕ a`, `e = y ⊕ b`, `c = a·b` reconstructs to `x·y`).
//! Likewise [`GmwStats`] counts only circuit structure (gate counts,
//! AND depth) and the party count — never a random bit. Therefore each
//! lane of a batched run is **identical in outputs and stats** to a
//! serial `run_gmw` call on that lane's inputs, for *any* DRBG state —
//! which frees the batch engine to draw one word per random value
//! instead of replaying the serial per-bit draw sequence. The property
//! test `prop_batch_gmw_equals_serial` pins this lane-for-lane, and the
//! batch DRBG itself follows the sharded engine's derivation recipe
//! ([`HmacDrbg::from_u64_labeled`]) so network-level flushes are
//! engine- and shard-invariant.

use crate::circuit::{Circuit, Gate};
use crate::gmw::GmwStats;
use pvr_crypto::drbg::HmacDrbg;

/// Maximum lanes a batch can carry (one per bit of the packed word).
pub const MAX_LANES: usize = 64;

/// A lane-packed word of booleans: bit `k` is lane `k`'s value.
///
/// Dead lanes (indices `>= lanes`) are always zero — every constructor
/// and operation masks them off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitBatch {
    bits: u64,
    lanes: usize,
}

impl BitBatch {
    /// An all-zero batch of `lanes` lanes.
    pub fn zero(lanes: usize) -> BitBatch {
        assert!((1..=MAX_LANES).contains(&lanes), "lanes must be 1..=64, got {lanes}");
        BitBatch { bits: 0, lanes }
    }

    /// Packs one bool per lane (`values.len()` lanes).
    pub fn pack(values: &[bool]) -> BitBatch {
        let mut b = BitBatch::zero(values.len());
        for (k, &v) in values.iter().enumerate() {
            b.set_lane(k, v);
        }
        b
    }

    /// A batch holding `value` in every lane.
    pub fn splat(value: bool, lanes: usize) -> BitBatch {
        let mut b = BitBatch::zero(lanes);
        if value {
            b.bits = b.mask();
        }
        b
    }

    /// The mask with every live lane bit set.
    pub fn mask(&self) -> u64 {
        if self.lanes == MAX_LANES {
            u64::MAX
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    /// Live lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The raw packed word (dead lanes zero).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Lane `k`'s value.
    pub fn lane(&self, k: usize) -> bool {
        assert!(k < self.lanes, "lane {k} out of range ({} lanes)", self.lanes);
        (self.bits >> k) & 1 == 1
    }

    /// Sets lane `k`.
    pub fn set_lane(&mut self, k: usize, v: bool) {
        assert!(k < self.lanes, "lane {k} out of range ({} lanes)", self.lanes);
        if v {
            self.bits |= 1 << k;
        } else {
            self.bits &= !(1 << k);
        }
    }

    /// Unpacks into one bool per lane.
    pub fn unpack(&self) -> Vec<bool> {
        (0..self.lanes).map(|k| self.lane(k)).collect()
    }
}

/// The result of one batched GMW execution.
#[derive(Clone, Debug)]
pub struct BatchGmwResult {
    /// Reconstructed output words, one per circuit output wire; lane
    /// `k` of each word is lane `k`'s output bit.
    pub outputs: Vec<BitBatch>,
    /// The stats of **each individual lane** — identical to what a
    /// serial [`crate::gmw::run_gmw`] call on that lane would report
    /// (stats count circuit structure only, so all lanes agree).
    pub lane_stats: GmwStats,
    /// Live lanes in this batch.
    pub lanes: usize,
}

impl BatchGmwResult {
    /// Lane `k`'s reconstructed output bits.
    pub fn lane_outputs(&self, k: usize) -> Vec<bool> {
        self.outputs.iter().map(|w| w.lane(k)).collect()
    }

    /// Aggregate cost of the whole batch, suitable for
    /// [`crate::costmodel::SmcCostModel::estimate_seconds`]: rounds are
    /// paid **once** for all lanes (the batching win — lanes share the
    /// same broadcast rounds), while triples, OTs, and bits scale with
    /// the lane count.
    pub fn aggregate_stats(&self) -> GmwStats {
        let l = self.lanes as u64;
        GmwStats {
            parties: self.lane_stats.parties,
            gates: self.lane_stats.gates,
            and_gates: self.lane_stats.and_gates,
            rounds: self.lane_stats.rounds,
            triples: self.lane_stats.triples * self.lanes,
            equivalent_ots: self.lane_stats.equivalent_ots * l,
            bits_broadcast: self.lane_stats.bits_broadcast * l,
        }
    }
}

/// Bit-sliced batched GMW runner over a fixed circuit.
///
/// Construction pre-computes the per-lane [`GmwStats`] skeleton (gate
/// counts and AND-depth rounds depend only on the circuit); each
/// [`run`](BatchGmw::run) then evaluates up to [`MAX_LANES`]
/// independent lanes word-wide.
#[derive(Clone, Debug)]
pub struct BatchGmw<'c> {
    circuit: &'c Circuit,
}

impl<'c> BatchGmw<'c> {
    /// Wraps `circuit` for batched evaluation.
    pub fn new(circuit: &'c Circuit) -> BatchGmw<'c> {
        BatchGmw { circuit }
    }

    /// Executes the circuit among `inputs.len()` GMW parties with all
    /// lanes in parallel.
    ///
    /// `inputs[p]` holds party `p`'s lane-packed input words in
    /// input-gate creation order (mirroring the serial engine's
    /// `inputs[p][i]` bit). Every word must carry the same lane count.
    /// Panics if the circuit references more parties than provided.
    pub fn run(&self, inputs: &[Vec<BitBatch>], rng: &mut HmacDrbg) -> BatchGmwResult {
        let n = inputs.len();
        assert!(n >= 1, "at least one party");
        let lanes = inputs
            .iter()
            .flat_map(|per_party| per_party.iter())
            .map(|b| b.lanes())
            .next()
            .unwrap_or(MAX_LANES);
        assert!(
            inputs.iter().all(|per_party| per_party.iter().all(|b| b.lanes() == lanes)),
            "all input words must carry the same lane count"
        );
        let mask = BitBatch::zero(lanes).mask();
        let circuit = self.circuit;

        let mut cursor = vec![0usize; n];
        let mut shares: Vec<Vec<u64>> = vec![Vec::with_capacity(circuit.len()); n];
        let mut stats = GmwStats { parties: n, gates: circuit.len(), ..Default::default() };
        let mut wire_round: Vec<usize> = Vec::with_capacity(circuit.len());

        for gate in circuit.gates() {
            match *gate {
                Gate::Input { party } => {
                    let p = party as usize;
                    assert!(p < n, "circuit references party {p}, only {n} present");
                    let v = inputs[p][cursor[p]].bits();
                    cursor[p] += 1;
                    // Owner draws one random word per other party —
                    // 64 lanes of share bits from a single DRBG output.
                    let mut acc = v;
                    for (q, sh) in shares.iter_mut().enumerate() {
                        if q == p {
                            continue;
                        }
                        let r = rng.u64() & mask;
                        sh.push(r);
                        acc ^= r;
                    }
                    shares[p].push(acc);
                    wire_round.push(0);
                }
                Gate::Const(c) => {
                    for (q, sh) in shares.iter_mut().enumerate() {
                        sh.push(if q == 0 && c { mask } else { 0 });
                    }
                    wire_round.push(0);
                }
                Gate::Xor(a, b) => {
                    for sh in shares.iter_mut() {
                        let v = sh[a.0 as usize] ^ sh[b.0 as usize];
                        sh.push(v);
                    }
                    wire_round.push(wire_round[a.0 as usize].max(wire_round[b.0 as usize]));
                }
                Gate::Not(a) => {
                    for (q, sh) in shares.iter_mut().enumerate() {
                        let v = sh[a.0 as usize] ^ if q == 0 { mask } else { 0 };
                        sh.push(v);
                    }
                    wire_round.push(wire_round[a.0 as usize]);
                }
                Gate::And(a, b) => {
                    // Word-wide Beaver triple: bit k of (ta, tb, tc) is
                    // lane k's triple, tc = ta & tb lane-wise.
                    let ta = rng.u64() & mask;
                    let tb = rng.u64() & mask;
                    let tc = ta & tb;
                    let share_out = |v: u64, rng: &mut HmacDrbg| -> Vec<u64> {
                        let mut out: Vec<u64> = (0..n - 1).map(|_| rng.u64() & mask).collect();
                        let parity = out.iter().fold(v, |acc, &s| acc ^ s);
                        out.push(parity);
                        out
                    };
                    let sa = share_out(ta, rng);
                    let sb = share_out(tb, rng);
                    let sc = share_out(tc, rng);

                    // Public openings d = x ⊕ a, e = y ⊕ b, lane-wise.
                    let mut d = 0u64;
                    let mut e = 0u64;
                    for (q, sh) in shares.iter().enumerate() {
                        d ^= sh[a.0 as usize] ^ sa[q];
                        e ^= sh[b.0 as usize] ^ sb[q];
                    }
                    stats.bits_broadcast += 2 * n as u64 * (n as u64 - 1);

                    // z_p = c_p ⊕ (d & b_p) ⊕ (e & a_p) ⊕ [p == 0](d & e)
                    for (q, sh) in shares.iter_mut().enumerate() {
                        let mut z = sc[q] ^ (d & sb[q]) ^ (e & sa[q]);
                        if q == 0 {
                            z ^= d & e;
                        }
                        sh.push(z);
                    }
                    stats.and_gates += 1;
                    stats.triples += 1;
                    stats.equivalent_ots += 2 * (n as u64) * (n as u64 - 1);
                    wire_round.push(wire_round[a.0 as usize].max(wire_round[b.0 as usize]) + 1);
                }
            }
        }

        stats.rounds =
            circuit.outputs().iter().map(|w| wire_round[w.0 as usize]).max().unwrap_or(0);

        let outputs: Vec<BitBatch> = circuit
            .outputs()
            .iter()
            .map(|w| {
                let word = shares.iter().fold(0u64, |acc, sh| acc ^ sh[w.0 as usize]);
                BitBatch { bits: word & mask, lanes }
            })
            .collect();
        stats.bits_broadcast += (circuit.outputs().len() as u64) * n as u64 * (n as u64 - 1);

        BatchGmwResult { outputs, lane_stats: stats, lanes }
    }
}

/// Packs per-lane plaintext inputs into the lane-packed layout
/// [`BatchGmw::run`] expects.
///
/// `lane_inputs[k][p]` is lane `k`'s party-`p` input bits (exactly what
/// each serial [`crate::gmw::run_gmw`] call would receive); the result
/// is indexed `[party][input_bit]` with lane `k` in bit `k`. All lanes
/// must agree on party count and per-party bit counts (they run the
/// same circuit).
pub fn pack_lane_inputs(lane_inputs: &[Vec<Vec<bool>>]) -> Vec<Vec<BitBatch>> {
    let lanes = lane_inputs.len();
    assert!((1..=MAX_LANES).contains(&lanes), "lanes must be 1..=64, got {lanes}");
    let parties = lane_inputs[0].len();
    let mut packed: Vec<Vec<BitBatch>> = Vec::with_capacity(parties);
    for p in 0..parties {
        let bits = lane_inputs[0][p].len();
        let mut per_party = Vec::with_capacity(bits);
        for i in 0..bits {
            let mut word = BitBatch::zero(lanes);
            for (k, lane) in lane_inputs.iter().enumerate() {
                assert_eq!(lane.len(), parties, "lane {k} has a different party count");
                assert_eq!(lane[p].len(), bits, "lane {k} party {p} has a different bit count");
                word.set_lane(k, lane[p][i]);
            }
            per_party.push(word);
        }
        packed.push(per_party);
    }
    packed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{from_bits, majority_circuit, min_circuit, to_bits};
    use crate::gmw::run_gmw;
    use proptest::prelude::*;

    fn min_lane_inputs(vals: &[Vec<u64>], width: usize) -> Vec<Vec<Vec<bool>>> {
        vals.iter().map(|lane| lane.iter().map(|&v| to_bits(v, width)).collect()).collect()
    }

    #[test]
    fn batch_min_matches_plaintext_per_lane() {
        let c = min_circuit(3, 8);
        let lanes: Vec<Vec<u64>> =
            vec![vec![200, 13, 77], vec![5, 255, 9], vec![0, 0, 0], vec![64, 64, 63]];
        let packed = pack_lane_inputs(&min_lane_inputs(&lanes, 8));
        let mut rng = HmacDrbg::from_u64_labeled(7, "smc-batch-test");
        let result = BatchGmw::new(&c).run(&packed, &mut rng);
        assert_eq!(result.lanes, 4);
        for (k, lane) in lanes.iter().enumerate() {
            let expect = *lane.iter().min().unwrap();
            assert_eq!(from_bits(&result.lane_outputs(k)), expect, "lane {k}");
        }
    }

    #[test]
    fn lane_stats_match_serial_formulas() {
        let c = min_circuit(5, 8);
        let lanes: Vec<Vec<u64>> = (0..64).map(|k| vec![k, k + 1, 200, 13, 77]).collect();
        let packed = pack_lane_inputs(&min_lane_inputs(&lanes, 8));
        let mut rng = HmacDrbg::from_u64_labeled(1, "smc-batch-test");
        let result = BatchGmw::new(&c).run(&packed, &mut rng);
        // Serial stats are randomness-independent, so any seed works.
        let serial = run_gmw(
            &c,
            &lanes[0].iter().map(|&v| to_bits(v, 8)).collect::<Vec<_>>(),
            &mut HmacDrbg::new(b"other seed entirely"),
        );
        assert_eq!(result.lane_stats, serial.stats);
        let agg = result.aggregate_stats();
        assert_eq!(agg.rounds, serial.stats.rounds, "rounds are shared across lanes");
        assert_eq!(agg.bits_broadcast, serial.stats.bits_broadcast * 64);
        assert_eq!(agg.equivalent_ots, serial.stats.equivalent_ots * 64);
        assert_eq!(agg.triples, serial.stats.triples * 64);
    }

    #[test]
    fn batch_majority_matches_plaintext() {
        let c = majority_circuit(5);
        let lane_votes: Vec<Vec<bool>> = vec![
            vec![true, false, true, true, false],
            vec![false, false, true, false, true],
            vec![true, true, true, true, true],
        ];
        let lane_inputs: Vec<Vec<Vec<bool>>> =
            lane_votes.iter().map(|votes| votes.iter().map(|&v| vec![v]).collect()).collect();
        let packed = pack_lane_inputs(&lane_inputs);
        let mut rng = HmacDrbg::from_u64_labeled(3, "smc-batch-test");
        let result = BatchGmw::new(&c).run(&packed, &mut rng);
        assert_eq!(result.lane_outputs(0), vec![true]);
        assert_eq!(result.lane_outputs(1), vec![false]);
        assert_eq!(result.lane_outputs(2), vec![true]);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = min_circuit(3, 6);
        let lanes: Vec<Vec<u64>> = vec![vec![9, 4, 30], vec![1, 2, 3]];
        let packed = pack_lane_inputs(&min_lane_inputs(&lanes, 6));
        let a = BatchGmw::new(&c).run(&packed, &mut HmacDrbg::new(b"s"));
        let b = BatchGmw::new(&c).run(&packed, &mut HmacDrbg::new(b"s"));
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.lane_stats, b.lane_stats);
    }

    #[test]
    fn partial_lane_masks_stay_clean() {
        // 3 live lanes: dead bits must never reach the outputs.
        let c = min_circuit(2, 4);
        let lanes: Vec<Vec<u64>> = vec![vec![15, 15], vec![0, 1], vec![7, 8]];
        let packed = pack_lane_inputs(&min_lane_inputs(&lanes, 4));
        let mut rng = HmacDrbg::from_u64_labeled(9, "smc-batch-test");
        let result = BatchGmw::new(&c).run(&packed, &mut rng);
        for w in &result.outputs {
            assert_eq!(w.bits() & !w.mask(), 0, "dead lanes leaked into outputs");
        }
        assert_eq!(from_bits(&result.lane_outputs(0)), 15);
        assert_eq!(from_bits(&result.lane_outputs(1)), 0);
        assert_eq!(from_bits(&result.lane_outputs(2)), 7);
    }

    #[test]
    #[should_panic(expected = "only 2 present")]
    fn missing_party_panics() {
        let c = min_circuit(3, 4);
        let lanes: Vec<Vec<u64>> = vec![vec![1, 2]];
        let packed = pack_lane_inputs(&min_lane_inputs(&lanes, 4));
        BatchGmw::new(&c).run(&packed, &mut HmacDrbg::new(b"x"));
    }

    #[test]
    fn bitbatch_pack_unpack_roundtrip() {
        let vals = vec![true, false, true, true, false, false, true];
        let b = BitBatch::pack(&vals);
        assert_eq!(b.lanes(), 7);
        assert_eq!(b.unpack(), vals);
        assert!(BitBatch::splat(true, 64).bits() == u64::MAX);
        assert!(BitBatch::splat(true, 3).bits() == 0b111);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_batch_gmw_equals_serial(
            lanes in 1usize..=64,
            parties in 2usize..5,
            width in 1usize..8,
            seed in any::<u64>(),
        ) {
            // Random inputs per lane, derived deterministically from the
            // proptest seed so failures replay.
            let mut gen = HmacDrbg::from_u64_labeled(seed, "prop-batch-inputs");
            let bound = 1u64 << width;
            let lane_vals: Vec<Vec<u64>> = (0..lanes)
                .map(|_| (0..parties).map(|_| gen.below(bound)).collect())
                .collect();
            let c = min_circuit(parties, width);
            let packed = pack_lane_inputs(&min_lane_inputs(&lane_vals, width));
            let mut batch_rng = HmacDrbg::from_u64_labeled(seed, "prop-batch-rng");
            let batch = BatchGmw::new(&c).run(&packed, &mut batch_rng);
            // Each lane must equal a serial run in outputs AND stats —
            // under a *different* DRBG, which is the whole point: both
            // are randomness-independent.
            for (k, lane) in lane_vals.iter().enumerate() {
                let inputs: Vec<Vec<bool>> =
                    lane.iter().map(|&v| to_bits(v, width)).collect();
                let mut serial_rng =
                    HmacDrbg::from_u64_labeled(seed ^ k as u64, "prop-serial-rng");
                let serial = run_gmw(&c, &inputs, &mut serial_rng);
                prop_assert_eq!(&batch.lane_outputs(k), &serial.outputs, "lane {} outputs", k);
                prop_assert_eq!(batch.lane_stats, serial.stats, "lane {} stats", k);
            }
        }

        #[test]
        fn prop_majority_lanes_equal_serial(
            lanes in 1usize..=64,
            parties in 3usize..6,
            seed in any::<u64>(),
        ) {
            let mut gen = HmacDrbg::from_u64_labeled(seed, "prop-maj-inputs");
            let lane_votes: Vec<Vec<bool>> = (0..lanes)
                .map(|_| (0..parties).map(|_| gen.chance(0.5)).collect())
                .collect();
            let c = majority_circuit(parties);
            let lane_inputs: Vec<Vec<Vec<bool>>> = lane_votes
                .iter()
                .map(|votes| votes.iter().map(|&v| vec![v]).collect())
                .collect();
            let packed = pack_lane_inputs(&lane_inputs);
            let mut batch_rng = HmacDrbg::from_u64_labeled(seed, "prop-maj-rng");
            let batch = BatchGmw::new(&c).run(&packed, &mut batch_rng);
            for (k, votes) in lane_votes.iter().enumerate() {
                let inputs: Vec<Vec<bool>> = votes.iter().map(|&v| vec![v]).collect();
                let serial = run_gmw(&c, &inputs, &mut HmacDrbg::from_u64_labeled(seed, "s"));
                prop_assert_eq!(&batch.lane_outputs(k), &serial.outputs, "lane {}", k);
                prop_assert_eq!(batch.lane_stats, serial.stats);
            }
        }
    }
}
