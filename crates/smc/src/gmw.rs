//! A GMW-style n-party MPC over XOR shares (the §3.1 SMC strawman,
//! executed for real).
//!
//! Faithful share-level semantics: every wire value is XOR-shared among
//! the parties, XOR/NOT gates are local, and each AND gate consumes one
//! Beaver multiplication triple and one broadcast round. Triples come
//! from a simulated trusted dealer — standard practice for protocol
//! simulators; OT-based triple generation would only *increase* the
//! strawman's cost, so the comparison in E4 is conservative in SMC's
//! favor.
//!
//! The execution is local (no real network), so wall-clock alone would
//! flatter SMC enormously; the [`crate::costmodel`] module layers the
//! communication costs (rounds × RTT, per-OT latency) on top of the
//! counted [`GmwStats`] to model a deployed system, calibrated against
//! the paper's FairplayMP data point.

use crate::circuit::{Circuit, Gate};
use pvr_crypto::drbg::HmacDrbg;

/// Communication/computation counters for one GMW execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GmwStats {
    /// Parties participating.
    pub parties: usize,
    /// Total gates evaluated.
    pub gates: usize,
    /// AND gates (each consumed a triple + a broadcast round slot).
    pub and_gates: usize,
    /// Sequential communication rounds (AND depth of the circuit).
    pub rounds: usize,
    /// Multiplication triples consumed.
    pub triples: usize,
    /// Equivalent 1-out-of-2 OTs had triples been generated pairwise
    /// (2 per triple per ordered party pair).
    pub equivalent_ots: u64,
    /// Bits broadcast during evaluation (d/e openings).
    pub bits_broadcast: u64,
}

/// The result of a GMW execution.
#[derive(Clone, Debug)]
pub struct GmwResult {
    /// Reconstructed output bits.
    pub outputs: Vec<bool>,
    /// Cost counters.
    pub stats: GmwStats,
}

/// One party's share vector, indexed by wire.
type Shares = Vec<bool>;

/// Executes `circuit` among `parties` GMW parties.
///
/// `inputs[p]` holds party `p`'s plaintext input bits (in input-gate
/// creation order); the function secret-shares them, runs the protocol,
/// and reconstructs the outputs. Panics if the circuit references more
/// parties than provided.
pub fn run_gmw(circuit: &Circuit, inputs: &[Vec<bool>], rng: &mut HmacDrbg) -> GmwResult {
    let n = inputs.len();
    assert!(n >= 1, "at least one party");
    let mut cursor = vec![0usize; n];
    let mut shares: Vec<Shares> = vec![Vec::with_capacity(circuit.len()); n];
    let mut stats = GmwStats { parties: n, gates: circuit.len(), ..Default::default() };

    // Track the round (AND-layer) of each wire for round counting.
    let mut wire_round: Vec<usize> = Vec::with_capacity(circuit.len());

    for gate in circuit.gates() {
        match *gate {
            Gate::Input { party } => {
                let p = party as usize;
                assert!(p < n, "circuit references party {p}, only {n} present");
                let v = inputs[p][cursor[p]];
                cursor[p] += 1;
                // Owner picks random shares for everyone else.
                let mut acc = v;
                for (q, sh) in shares.iter_mut().enumerate() {
                    if q == p {
                        continue;
                    }
                    let r = rng.chance(0.5);
                    sh.push(r);
                    acc ^= r;
                }
                shares[p].push(acc);
                wire_round.push(0);
            }
            Gate::Const(c) => {
                // Party 0 holds the constant; others hold 0.
                for (q, sh) in shares.iter_mut().enumerate() {
                    sh.push(q == 0 && c);
                }
                wire_round.push(0);
            }
            Gate::Xor(a, b) => {
                for sh in shares.iter_mut() {
                    let v = sh[a.0 as usize] ^ sh[b.0 as usize];
                    sh.push(v);
                }
                wire_round.push(wire_round[a.0 as usize].max(wire_round[b.0 as usize]));
            }
            Gate::Not(a) => {
                for (q, sh) in shares.iter_mut().enumerate() {
                    let v = sh[a.0 as usize] ^ (q == 0);
                    sh.push(v);
                }
                wire_round.push(wire_round[a.0 as usize]);
            }
            Gate::And(a, b) => {
                // Dealer: random triple (ta, tb, tc) with tc = ta & tb,
                // XOR-shared among the parties.
                let ta = rng.chance(0.5);
                let tb = rng.chance(0.5);
                let tc = ta && tb;
                let share_out = |v: bool, rng: &mut HmacDrbg, n: usize| -> Vec<bool> {
                    let mut out: Vec<bool> = (0..n - 1).map(|_| rng.chance(0.5)).collect();
                    let parity = out.iter().fold(v, |acc, &s| acc ^ s);
                    out.push(parity);
                    out
                };
                let sa = share_out(ta, rng, n);
                let sb = share_out(tb, rng, n);
                let sc = share_out(tc, rng, n);

                // Each party computes and broadcasts d_p = x_p ^ a_p and
                // e_p = y_p ^ b_p; d, e are reconstructed publicly.
                let mut d = false;
                let mut e = false;
                for (q, sh) in shares.iter().enumerate() {
                    d ^= sh[a.0 as usize] ^ sa[q];
                    e ^= sh[b.0 as usize] ^ sb[q];
                }
                stats.bits_broadcast += 2 * n as u64 * (n as u64 - 1);

                // z_p = c_p ^ (d & b_p) ^ (e & a_p) ^ [p == 0](d & e)
                for (q, sh) in shares.iter_mut().enumerate() {
                    let mut z = sc[q];
                    if d {
                        z ^= sb[q];
                    }
                    if e {
                        z ^= sa[q];
                    }
                    if q == 0 && d && e {
                        z ^= true;
                    }
                    sh.push(z);
                }
                stats.and_gates += 1;
                stats.triples += 1;
                stats.equivalent_ots += 2 * (n as u64) * (n as u64 - 1);
                wire_round.push(wire_round[a.0 as usize].max(wire_round[b.0 as usize]) + 1);
            }
        }
    }

    stats.rounds = circuit.outputs().iter().map(|w| wire_round[w.0 as usize]).max().unwrap_or(0);

    // Output reconstruction: all parties publish their output shares.
    let outputs = circuit
        .outputs()
        .iter()
        .map(|w| shares.iter().fold(false, |acc, sh| acc ^ sh[w.0 as usize]))
        .collect();
    stats.bits_broadcast += (circuit.outputs().len() as u64) * n as u64 * (n as u64 - 1);

    GmwResult { outputs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{from_bits, majority_circuit, min_circuit, to_bits};
    use proptest::prelude::*;

    fn rng() -> HmacDrbg {
        HmacDrbg::new(b"gmw tests")
    }

    #[test]
    fn gmw_matches_plaintext_min() {
        let c = min_circuit(5, 8);
        let vals = [200u64, 13, 77, 13, 255];
        let inputs: Vec<Vec<bool>> = vals.iter().map(|&v| to_bits(v, 8)).collect();
        let mut r = rng();
        let result = run_gmw(&c, &inputs, &mut r);
        assert_eq!(from_bits(&result.outputs), 13);
        assert_eq!(result.outputs.len(), 8);
        assert_eq!(result.stats.parties, 5);
        assert_eq!(result.stats.and_gates, c.and_count());
        assert_eq!(result.stats.rounds, c.and_depth());
        assert!(result.stats.bits_broadcast > 0);
    }

    #[test]
    fn gmw_matches_plaintext_majority() {
        let c = majority_circuit(5);
        let votes = [true, false, true, true, false];
        let inputs: Vec<Vec<bool>> = votes.iter().map(|&v| vec![v]).collect();
        let mut r = rng();
        let result = run_gmw(&c, &inputs, &mut r);
        assert_eq!(result.outputs, vec![true]);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = min_circuit(3, 6);
        let inputs: Vec<Vec<bool>> = [9u64, 4, 30].iter().map(|&v| to_bits(v, 6)).collect();
        let a = run_gmw(&c, &inputs, &mut HmacDrbg::new(b"s"));
        let b = run_gmw(&c, &inputs, &mut HmacDrbg::new(b"s"));
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    // The `2 * 2 * 1` spells out the OT formula: parties × OTs-per-AND
    // × rounds, so the factor of 1 is deliberate documentation.
    #[allow(clippy::identity_op)]
    fn two_party_works() {
        let c = min_circuit(2, 4);
        let inputs: Vec<Vec<bool>> = [11u64, 6].iter().map(|&v| to_bits(v, 4)).collect();
        let result = run_gmw(&c, &inputs, &mut rng());
        assert_eq!(from_bits(&result.outputs), 6);
        assert_eq!(result.stats.equivalent_ots, 2 * 2 * 1 * c.and_count() as u64);
    }

    #[test]
    #[should_panic(expected = "only 2 present")]
    fn missing_party_panics() {
        let c = min_circuit(3, 4);
        let inputs: Vec<Vec<bool>> = [1u64, 2].iter().map(|&v| to_bits(v, 4)).collect();
        run_gmw(&c, &inputs, &mut rng());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_gmw_equals_plaintext(vals in proptest::collection::vec(0u64..64, 2..5),
                                     seed in any::<u64>()) {
            let c = min_circuit(vals.len(), 6);
            let inputs: Vec<Vec<bool>> = vals.iter().map(|&v| to_bits(v, 6)).collect();
            let plain = c.eval_plain(&inputs);
            let mut r = HmacDrbg::from_u64_labeled(seed, "prop-gmw");
            let mpc = run_gmw(&c, &inputs, &mut r);
            prop_assert_eq!(mpc.outputs, plain);
        }
    }
}
