//! # pvr-mht — Merkle hash trees for commitment and selective disclosure
//!
//! Implements the paper's §3.6 construction and its §3.8 batching trick:
//!
//! * [`label`] — prefix-free bitstring labels (`var(v)` / `rule(x)` /
//!   protocol slots), the address space of the conceptual tree;
//! * [`trie`] — the sparse MHT: instantiated leaves, path nodes, and
//!   **blinded phantom siblings** indistinguishable from real subtree
//!   hashes, so a disclosure "does not reveal the presence or absence of
//!   any vertices other than x";
//! * [`seqtree`] — the "small MHT" for signing BGP update bursts in
//!   batches and revealing routes individually;
//! * [`signed_root`] — signed root commitments, gossiped among neighbors,
//!   and self-contained [`signed_root::EquivocationEvidence`].

pub mod label;
pub mod seqtree;
pub mod signed_root;
pub mod trie;

pub use label::{BitString, Label};
pub use seqtree::{SeqProof, SeqTree};
pub use signed_root::{CommitContext, EquivocationEvidence, SignedRoot};
pub use trie::{unblinded_phantom, InclusionProof, SiblingBlinding, SparseMht};
