//! The sparse, blinded Merkle hash tree of §3.6.
//!
//! Conceptually the tree has one leaf per valid prefix-free bitstring;
//! concretely a network instantiates only "a) the instantiated leaves,
//! b) all the inner nodes along a path from an instantiated leaf to the
//! root, and c) all the immediate children of these inner nodes". The
//! immediate children that are *not* on any path are **phantom nodes**
//! whose values are pseudorandom bitstrings derived from a secret seed —
//! "since the neighbor does not know whether the hash values are random
//! bitstrings or hashes of 'real' interior nodes, this does not reveal
//! the presence or absence of any vertices other than x".
//!
//! Disclosure of a leaf is an authentication path: the sibling hash at
//! every level from the leaf to the root. Verifiers recompute the root
//! and compare with the previously published (signed, gossiped) value.

use crate::label::{BitString, Label};
use pvr_crypto::encoding::{decode_seq, encode_seq, Reader, Wire, WireError};
use pvr_crypto::hmac::hmac_sha256;
use pvr_crypto::sha256::{sha256_concat, Digest};
use std::collections::HashMap;

/// Domain-separated leaf hash: `H("leaf" || path || payload)`.
fn leaf_hash(path: &BitString, payload: &[u8]) -> Digest {
    sha256_concat(&[b"pvr.mht.leaf", &path.canonical_bytes(), payload])
}

/// Domain-separated inner-node hash: `H("node" || left || right)`.
fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_concat(&[b"pvr.mht.node", left.as_bytes(), right.as_bytes()])
}

/// Phantom-child value for an uninstantiated subtree: keyed PRF of the
/// path, indistinguishable from a genuine subtree hash without the seed.
fn phantom_hash(seed: &[u8; 32], path: &BitString) -> Digest {
    hmac_sha256(seed, &[b"pvr.mht.phantom".as_slice(), &path.canonical_bytes()].concat())
}

/// The *unblinded* phantom value used by the ablation mode: a public
/// function of the path alone. Anyone can recompute it — which is
/// exactly the leak the paper's blinding prevents (see
/// [`SiblingBlinding::Unblinded`]).
pub fn unblinded_phantom(path: &BitString) -> Digest {
    sha256_concat(&[b"pvr.mht.phantom.public", &path.canonical_bytes()])
}

/// Whether phantom siblings are blinded (the paper's design, §3.6) or
/// publicly recomputable (the E11 structural-privacy ablation).
///
/// With `Unblinded`, any proof recipient can test each sibling hash
/// against [`unblinded_phantom`] and learn whether the adjacent subtree
/// is empty — i.e., *the absence of rules/variables*, precisely the
/// structural information §3.6 is designed to hide ("this does not
/// reveal the presence or absence of any vertices other than x").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SiblingBlinding {
    /// Seed-keyed phantoms (the paper's construction).
    Blinded,
    /// Publicly derivable phantoms (the leaky strawman).
    Unblinded,
}

/// A sparse Merkle hash tree over labeled leaves.
///
/// Owned by the committing network; neighbors only ever see the root
/// (via a signed commitment) and individual [`InclusionProof`]s.
pub struct SparseMht {
    /// Hash of every instantiated node, keyed by its path.
    nodes: HashMap<BitString, Digest>,
    /// Leaf payloads by label (for proof construction).
    leaves: HashMap<Label, Vec<u8>>,
    /// Secret seed for phantom-sibling derivation.
    seed: [u8; 32],
    /// Blinded (paper) or unblinded (ablation) phantom siblings.
    blinding: SiblingBlinding,
    root: Digest,
}

impl SparseMht {
    /// Builds the tree over `(label, payload)` pairs.
    ///
    /// `seed` is the committing network's secret; it never leaves the
    /// struct. Duplicate labels panic (a network must assign unique
    /// bitstrings, §3.6).
    pub fn build(items: &[(Label, Vec<u8>)], seed: [u8; 32]) -> SparseMht {
        Self::build_with(items, seed, SiblingBlinding::Blinded)
    }

    /// Builds the tree with an explicit blinding mode (the `Unblinded`
    /// mode exists only for the structural-privacy ablation; never use
    /// it outside experiments).
    pub fn build_with(
        items: &[(Label, Vec<u8>)],
        seed: [u8; 32],
        blinding: SiblingBlinding,
    ) -> SparseMht {
        let mut leaves = HashMap::with_capacity(items.len());
        for (label, payload) in items {
            let prev = leaves.insert(label.clone(), payload.clone());
            assert!(prev.is_none(), "duplicate MHT label {label:?}");
        }
        let mut tree =
            SparseMht { nodes: HashMap::new(), leaves, seed, blinding, root: Digest::ZERO };
        let hashed: Vec<(BitString, Digest)> = tree
            .leaves
            .iter()
            .map(|(label, payload)| {
                let path = label.to_bits();
                let h = leaf_hash(&path, payload);
                (path, h)
            })
            .collect();
        tree.root = tree.build_node(&BitString::empty(), hashed);
        tree
    }

    /// Recursively computes (and records) the hash of the node at `path`,
    /// covering the given leaves (all of which have `path` as a prefix).
    fn build_node(&mut self, path: &BitString, leaves: Vec<(BitString, Digest)>) -> Digest {
        let h = match leaves.as_slice() {
            [] => self.phantom(path),
            [(leaf_path, leaf_digest)] if leaf_path.len() == path.len() => {
                debug_assert_eq!(leaf_path, path);
                *leaf_digest
            }
            _ => {
                // Prefix-freeness guarantees no leaf terminates at an inner
                // node, so every remaining leaf has a bit at `depth`.
                let depth = path.len();
                let (ones, zeros): (Vec<_>, Vec<_>) =
                    leaves.into_iter().partition(|(p, _)| p.bit(depth));
                let left = self.build_node(&path.push(false), zeros);
                let right = self.build_node(&path.push(true), ones);
                node_hash(&left, &right)
            }
        };
        self.nodes.insert(path.clone(), h);
        h
    }

    /// The root hash — this is what gets signed and published (§3.6).
    pub fn root(&self) -> Digest {
        self.root
    }

    fn phantom(&self, path: &BitString) -> Digest {
        match self.blinding {
            SiblingBlinding::Blinded => phantom_hash(&self.seed, path),
            SiblingBlinding::Unblinded => unblinded_phantom(path),
        }
    }

    /// Number of instantiated leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True if the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Number of instantiated (path) nodes — used by the overhead
    /// accounting in experiment E6.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Produces the selective-disclosure proof for `label`, or `None` if
    /// the label is not instantiated.
    pub fn prove(&self, label: &Label) -> Option<InclusionProof> {
        let payload = self.leaves.get(label)?.clone();
        let path = label.to_bits();
        let mut siblings = Vec::with_capacity(path.len());
        // Walk from the leaf's parent up to the root, collecting the
        // sibling hash at each level (leaf-to-root order).
        for depth in (0..path.len()).rev() {
            let sib_path = path.prefix(depth).push(!path.bit(depth));
            // Sibling may be instantiated or phantom.
            let h = match self.nodes.get(&sib_path) {
                Some(h) => *h,
                None => self.phantom(&sib_path),
            };
            siblings.push(h);
        }
        Some(InclusionProof { label: label.clone(), payload, siblings })
    }

    /// Direct payload access for the tree owner.
    pub fn payload(&self, label: &Label) -> Option<&[u8]> {
        self.leaves.get(label).map(|v| v.as_slice())
    }

    /// Iterates over instantiated labels (order unspecified).
    pub fn labels(&self) -> impl Iterator<Item = &Label> {
        self.leaves.keys()
    }
}

/// A selective-disclosure proof: the leaf payload plus the hash values
/// "for interior nodes along the path from x to the MHT's root" (§3.6).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InclusionProof {
    /// The disclosed leaf's label.
    pub label: Label,
    /// The disclosed payload `I(x)`.
    pub payload: Vec<u8>,
    /// Sibling hashes, ordered leaf-to-root.
    pub siblings: Vec<Digest>,
}

impl InclusionProof {
    /// Verifies the proof against a published root.
    pub fn verify(&self, root: &Digest) -> bool {
        let path = self.label.to_bits();
        if self.siblings.len() != path.len() {
            return false;
        }
        let mut h = leaf_hash(&path, &self.payload);
        for (i, sib) in self.siblings.iter().enumerate() {
            let depth = path.len() - 1 - i;
            h = if path.bit(depth) { node_hash(sib, &h) } else { node_hash(&h, sib) };
        }
        h == *root
    }

    /// Size of the proof in bytes when serialized (for E6).
    pub fn byte_size(&self) -> usize {
        self.to_wire().len()
    }
}

impl Wire for InclusionProof {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.label.encode(buf);
        self.payload.encode(buf);
        encode_seq(&self.siblings, buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(InclusionProof {
            label: Label::decode(r)?,
            payload: Vec::<u8>::decode(r)?,
            siblings: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn items(n: u32) -> Vec<(Label, Vec<u8>)> {
        (0..n).map(|i| (Label::Var(i), format!("payload-{i}").into_bytes())).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let t = SparseMht::build(&items(1), [1; 32]);
        let proof = t.prove(&Label::Var(0)).unwrap();
        assert!(proof.verify(&t.root()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn all_leaves_provable() {
        let t = SparseMht::build(&items(17), [2; 32]);
        for i in 0..17 {
            let proof = t.prove(&Label::Var(i)).unwrap();
            assert!(proof.verify(&t.root()), "leaf {i}");
            assert_eq!(proof.payload, format!("payload-{i}").into_bytes());
        }
    }

    #[test]
    fn absent_label_unprovable() {
        let t = SparseMht::build(&items(4), [3; 32]);
        assert!(t.prove(&Label::Var(99)).is_none());
        assert!(t.prove(&Label::Rule(0)).is_none());
    }

    #[test]
    fn mixed_label_kinds() {
        let mut xs = items(3);
        xs.push((Label::Rule(0), b"min".to_vec()));
        xs.push((Label::Slot(1, 2), b"bit".to_vec()));
        xs.push((Label::Custom(b"extra".to_vec()), b"x".to_vec()));
        let t = SparseMht::build(&xs, [4; 32]);
        for (label, payload) in &xs {
            let p = t.prove(label).unwrap();
            assert!(p.verify(&t.root()));
            assert_eq!(&p.payload, payload);
        }
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let t1 = SparseMht::build(&items(4), [5; 32]);
        let t2 = SparseMht::build(&items(5), [5; 32]);
        let proof = t1.prove(&Label::Var(0)).unwrap();
        assert!(!proof.verify(&t2.root()));
    }

    #[test]
    fn proof_rejects_tampered_payload() {
        let t = SparseMht::build(&items(4), [6; 32]);
        let mut proof = t.prove(&Label::Var(1)).unwrap();
        proof.payload = b"forged".to_vec();
        assert!(!proof.verify(&t.root()));
    }

    #[test]
    fn proof_rejects_tampered_sibling() {
        let t = SparseMht::build(&items(4), [7; 32]);
        let mut proof = t.prove(&Label::Var(1)).unwrap();
        proof.siblings[0] = Digest::ZERO;
        assert!(!proof.verify(&t.root()));
    }

    #[test]
    fn proof_rejects_relabeled_leaf() {
        // A proof for Var(1) must not verify as a proof for Var(2).
        let t = SparseMht::build(&items(4), [8; 32]);
        let mut proof = t.prove(&Label::Var(1)).unwrap();
        proof.label = Label::Var(2);
        assert!(!proof.verify(&t.root()));
    }

    #[test]
    fn roots_differ_with_content() {
        let a = SparseMht::build(&items(4), [9; 32]);
        let mut xs = items(4);
        xs[2].1 = b"changed".to_vec();
        let b = SparseMht::build(&xs, [9; 32]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn roots_differ_with_seed() {
        // Phantom siblings depend on the seed, so the root does too: two
        // networks with identical content are still uncorrelated.
        let a = SparseMht::build(&items(1), [10; 32]);
        let b = SparseMht::build(&items(1), [11; 32]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn deterministic_build() {
        let a = SparseMht::build(&items(8), [12; 32]);
        let b = SparseMht::build(&items(8), [12; 32]);
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn empty_tree() {
        let t = SparseMht::build(&[], [13; 32]);
        assert!(t.is_empty());
        // Root of an empty tree is the phantom of the empty path.
        assert_ne!(t.root(), Digest::ZERO);
    }

    #[test]
    #[should_panic(expected = "duplicate MHT label")]
    fn duplicate_labels_panic() {
        let xs = vec![(Label::Var(0), b"a".to_vec()), (Label::Var(0), b"b".to_vec())];
        SparseMht::build(&xs, [14; 32]);
    }

    #[test]
    fn proof_wire_round_trip() {
        let t = SparseMht::build(&items(6), [15; 32]);
        let proof = t.prove(&Label::Var(3)).unwrap();
        let back: InclusionProof = pvr_crypto::decode_exact(&proof.to_wire()).unwrap();
        assert_eq!(back, proof);
        assert!(back.verify(&t.root()));
        assert_eq!(proof.byte_size(), proof.to_wire().len());
    }

    #[test]
    fn proof_size_independent_of_leaf_count() {
        // The paper's structure gives proofs proportional to the label
        // length, not the number of leaves: growing the tree must not grow
        // the proof.
        let small = SparseMht::build(&items(2), [16; 32]);
        let large = SparseMht::build(&items(512), [16; 32]);
        let ps = small.prove(&Label::Var(0)).unwrap();
        let pl = large.prove(&Label::Var(0)).unwrap();
        assert_eq!(ps.siblings.len(), pl.siblings.len());
    }

    #[test]
    fn ablation_unblinded_siblings_leak_absence() {
        // The structural-privacy ablation (E11): with public
        // phantom values, a proof recipient can test each sibling hash
        // and learn whether the adjacent subtree is empty.
        use crate::label::BitString;

        let xs = vec![(Label::Var(0), b"only leaf".to_vec())];
        let leaky = SparseMht::build_with(&xs, [20; 32], SiblingBlinding::Unblinded);
        let proof = leaky.prove(&Label::Var(0)).unwrap();
        let path = Label::Var(0).to_bits();

        // Attack: recompute the public phantom for every sibling path
        // and compare. In a single-leaf tree, EVERY sibling is phantom,
        // so the attacker learns the entire tree is otherwise empty.
        let mut detected_empty = 0;
        for (i, sib) in proof.siblings.iter().enumerate() {
            let depth = path.len() - 1 - i;
            let sib_path: BitString = path.prefix(depth).push(!path.bit(depth));
            if *sib == unblinded_phantom(&sib_path) {
                detected_empty += 1;
            }
        }
        assert_eq!(
            detected_empty,
            proof.siblings.len(),
            "unblinded mode reveals every empty subtree"
        );

        // The paper's design: the same attack yields nothing.
        let safe = SparseMht::build(&xs, [20; 32]);
        let proof = safe.prove(&Label::Var(0)).unwrap();
        let mut detected_empty = 0;
        for (i, sib) in proof.siblings.iter().enumerate() {
            let depth = path.len() - 1 - i;
            let sib_path: BitString = path.prefix(depth).push(!path.bit(depth));
            if *sib == unblinded_phantom(&sib_path) {
                detected_empty += 1;
            }
        }
        assert_eq!(detected_empty, 0, "blinded phantoms are untestable");
    }

    #[test]
    fn ablation_unblinded_mode_still_verifies() {
        // Correctness is unaffected by the blinding choice — only
        // privacy differs (that is what makes it an ablation).
        let t = SparseMht::build_with(&items(8), [21; 32], SiblingBlinding::Unblinded);
        for i in 0..8 {
            assert!(t.prove(&Label::Var(i)).unwrap().verify(&t.root()));
        }
    }

    #[test]
    fn disclosure_hides_other_leaves() {
        // Structural privacy check: the proof for Var(0) from a tree that
        // also contains Var(1) must contain no byte sequence equal to
        // Var(1)'s payload or its leaf hash.
        let secret = b"the secret route via N2".to_vec();
        let xs = vec![(Label::Var(0), b"public".to_vec()), (Label::Var(1), secret.clone())];
        let t = SparseMht::build(&xs, [17; 32]);
        let proof_bytes = t.prove(&Label::Var(0)).unwrap().to_wire();
        let needle = &secret[..];
        assert!(
            !proof_bytes.windows(needle.len()).any(|w| w == needle),
            "payload of an undisclosed leaf leaked into a proof"
        );
    }

    proptest! {
        #[test]
        fn prop_every_leaf_verifies(n in 1u32..64, seed in any::<[u8; 32]>()) {
            let t = SparseMht::build(&items(n), seed);
            for i in 0..n {
                let p = t.prove(&Label::Var(i)).unwrap();
                prop_assert!(p.verify(&t.root()));
            }
        }

        #[test]
        fn prop_cross_tree_proofs_fail(n in 2u32..32, seed in any::<[u8; 32]>()) {
            let t1 = SparseMht::build(&items(n), seed);
            let mut xs = items(n);
            xs[0].1 = b"different".to_vec();
            let t2 = SparseMht::build(&xs, seed);
            let p = t1.prove(&Label::Var(0)).unwrap();
            prop_assert!(!p.verify(&t2.root()));
        }
    }
}
