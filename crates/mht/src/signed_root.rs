//! Signed root commitments and equivocation evidence.
//!
//! §3.6: "Each network simply computes the hash value of its MHT's root
//! node, signs that hash value, and publishes it to its neighbors. The
//! neighbors can then gossip about the hash value to ensure that they
//! all have the same view of the MHT." A network that shows different
//! roots to different neighbors for the same decision epoch has
//! *equivocated*; the two conflicting signed roots are self-contained,
//! third-party-verifiable evidence.

use pvr_crypto::encoding::{Reader, Wire, WireError};
use pvr_crypto::keys::{Identity, KeyStore, PrincipalId};
use pvr_crypto::rsa::RsaSignature;
use pvr_crypto::sha256::Digest;
use pvr_crypto::CryptoError;

/// A context string distinguishing commitment streams (e.g. one per
/// (prefix, decision round)); equivocation is only meaningful within a
/// single context.
pub type CommitContext = Vec<u8>;

/// A network's signed commitment to an MHT root for one decision epoch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignedRoot {
    /// The committing network.
    pub signer: PrincipalId,
    /// What decision this root commits (e.g. prefix + round).
    pub context: CommitContext,
    /// Monotonic epoch within the context.
    pub epoch: u64,
    /// The MHT root hash.
    pub root: Digest,
    /// Signature over the canonical encoding of the above.
    pub signature: RsaSignature,
}

impl SignedRoot {
    /// Canonical bytes covered by the signature.
    fn signed_bytes(signer: PrincipalId, context: &[u8], epoch: u64, root: &Digest) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + context.len());
        buf.extend_from_slice(b"pvr.signedroot.v1");
        signer.encode(&mut buf);
        context.to_vec().encode(&mut buf);
        epoch.encode(&mut buf);
        root.encode(&mut buf);
        buf
    }

    /// Creates and signs a root commitment.
    pub fn create(
        identity: &Identity,
        context: CommitContext,
        epoch: u64,
        root: Digest,
    ) -> SignedRoot {
        let bytes = Self::signed_bytes(identity.id(), &context, epoch, &root);
        SignedRoot { signer: identity.id(), context, epoch, root, signature: identity.sign(&bytes) }
    }

    /// Verifies the signature against the key store.
    pub fn verify(&self, keys: &KeyStore) -> Result<(), CryptoError> {
        let bytes = Self::signed_bytes(self.signer, &self.context, self.epoch, &self.root);
        keys.verify(self.signer, &bytes, &self.signature)
    }
}

impl Wire for SignedRoot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.signer.encode(buf);
        self.context.encode(buf);
        self.epoch.encode(buf);
        self.root.encode(buf);
        self.signature.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SignedRoot {
            signer: PrincipalId::decode(r)?,
            context: CommitContext::decode(r)?,
            epoch: u64::decode(r)?,
            root: Digest::decode(r)?,
            signature: RsaSignature::decode(r)?,
        })
    }
}

/// Two conflicting signed roots: proof that `signer` equivocated.
///
/// This is the paper's Evidence property in its purest form — the pair
/// of signatures convinces any third party with the signer's public key,
/// with no trust in the accuser.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EquivocationEvidence {
    /// First signed root.
    pub a: SignedRoot,
    /// Conflicting signed root.
    pub b: SignedRoot,
}

impl EquivocationEvidence {
    /// Checks whether two signed roots conflict; returns evidence if so.
    ///
    /// Roots conflict when signer, context, and epoch all match but the
    /// root hashes differ.
    pub fn try_from_pair(a: &SignedRoot, b: &SignedRoot) -> Option<EquivocationEvidence> {
        if a.signer == b.signer && a.context == b.context && a.epoch == b.epoch && a.root != b.root
        {
            Some(EquivocationEvidence { a: a.clone(), b: b.clone() })
        } else {
            None
        }
    }

    /// Third-party judgment: both signatures valid ⟹ the signer is
    /// provably faulty (Accuracy: a correct signer never signs two
    /// different roots for one epoch, so this can never hold for it).
    pub fn judge(&self, keys: &KeyStore) -> Result<PrincipalId, CryptoError> {
        if self.a.signer != self.b.signer
            || self.a.context != self.b.context
            || self.a.epoch != self.b.epoch
            || self.a.root == self.b.root
        {
            return Err(CryptoError::Malformed("roots do not conflict"));
        }
        self.a.verify(keys)?;
        self.b.verify(keys)?;
        Ok(self.a.signer)
    }
}

impl Wire for EquivocationEvidence {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.a.encode(buf);
        self.b.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(EquivocationEvidence { a: SignedRoot::decode(r)?, b: SignedRoot::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvr_crypto::drbg::HmacDrbg;
    use pvr_crypto::sha256::sha256;

    fn setup() -> (Identity, KeyStore) {
        let mut rng = HmacDrbg::new(b"signed root tests");
        let id = Identity::generate(10, 512, &mut rng);
        let mut keys = KeyStore::new();
        keys.register_identity(&id);
        (id, keys)
    }

    #[test]
    fn create_and_verify() {
        let (id, keys) = setup();
        let sr = SignedRoot::create(&id, b"prefix/8".to_vec(), 1, sha256(b"root"));
        assert!(sr.verify(&keys).is_ok());
    }

    #[test]
    fn tampered_root_rejected() {
        let (id, keys) = setup();
        let mut sr = SignedRoot::create(&id, b"ctx".to_vec(), 1, sha256(b"root"));
        sr.root = sha256(b"other");
        assert!(sr.verify(&keys).is_err());
    }

    #[test]
    fn tampered_epoch_rejected() {
        let (id, keys) = setup();
        let mut sr = SignedRoot::create(&id, b"ctx".to_vec(), 1, sha256(b"root"));
        sr.epoch = 2;
        assert!(sr.verify(&keys).is_err());
    }

    #[test]
    fn equivocation_detected_and_judged() {
        let (id, keys) = setup();
        let a = SignedRoot::create(&id, b"ctx".to_vec(), 5, sha256(b"view for B"));
        let b = SignedRoot::create(&id, b"ctx".to_vec(), 5, sha256(b"view for N1"));
        let ev = EquivocationEvidence::try_from_pair(&a, &b).expect("conflict");
        assert_eq!(ev.judge(&keys).unwrap(), 10);
    }

    #[test]
    fn consistent_roots_are_not_evidence() {
        let (id, _) = setup();
        let a = SignedRoot::create(&id, b"ctx".to_vec(), 5, sha256(b"same"));
        let b = SignedRoot::create(&id, b"ctx".to_vec(), 5, sha256(b"same"));
        assert!(EquivocationEvidence::try_from_pair(&a, &b).is_none());
    }

    #[test]
    fn different_epochs_are_not_evidence() {
        let (id, _) = setup();
        let a = SignedRoot::create(&id, b"ctx".to_vec(), 5, sha256(b"r1"));
        let b = SignedRoot::create(&id, b"ctx".to_vec(), 6, sha256(b"r2"));
        assert!(EquivocationEvidence::try_from_pair(&a, &b).is_none());
    }

    #[test]
    fn different_contexts_are_not_evidence() {
        let (id, _) = setup();
        let a = SignedRoot::create(&id, b"ctx1".to_vec(), 5, sha256(b"r1"));
        let b = SignedRoot::create(&id, b"ctx2".to_vec(), 5, sha256(b"r2"));
        assert!(EquivocationEvidence::try_from_pair(&a, &b).is_none());
    }

    #[test]
    fn forged_evidence_rejected_by_judge() {
        // Accuracy: an accuser cannot frame a correct network by altering
        // one of the roots — the signature check fails.
        let (id, keys) = setup();
        let a = SignedRoot::create(&id, b"ctx".to_vec(), 5, sha256(b"r1"));
        let mut b = SignedRoot::create(&id, b"ctx".to_vec(), 5, sha256(b"r1"));
        b.root = sha256(b"forged"); // altered after signing
        let ev = EquivocationEvidence { a, b };
        assert!(ev.judge(&keys).is_err());
    }

    #[test]
    fn malformed_evidence_rejected_by_judge() {
        let (id, keys) = setup();
        let a = SignedRoot::create(&id, b"ctx".to_vec(), 5, sha256(b"r1"));
        let ev = EquivocationEvidence { a: a.clone(), b: a };
        assert!(ev.judge(&keys).is_err());
    }

    #[test]
    fn wire_round_trip() {
        let (id, keys) = setup();
        let sr = SignedRoot::create(&id, b"ctx".to_vec(), 3, sha256(b"r"));
        let back: SignedRoot = pvr_crypto::decode_exact(&sr.to_wire()).unwrap();
        assert_eq!(back, sr);
        assert!(back.verify(&keys).is_ok());
    }
}
