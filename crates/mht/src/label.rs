//! Prefix-free bitstring labels for MHT leaves.
//!
//! §3.6: "each network can assign a unique bitstring to each of its
//! rules, as well as to any output produced by these rules … the
//! resulting bitstrings are prefix-free, i.e., no valid bitstring is a
//! prefix of another valid bitstring. A simple way to ensure both is to
//! encode the string `rule(x)` for each rule x and `var(v)` for each
//! variable v, although there are more efficient representations."
//!
//! We use one of those more efficient representations: a fixed one-byte
//! kind tag followed by a fixed-width or length-prefixed body. Two valid
//! labels of the same byte length can never be proper prefixes of each
//! other, labels of different kinds differ in their first byte, and
//! variable-length custom labels carry a length prefix — so the valid
//! label set is prefix-free, exactly as the construction requires.

use pvr_crypto::encoding::{Reader, Wire, WireError};

/// A bit string (MSB-first within each byte), the path of an MHT leaf.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitString {
    bytes: Vec<u8>,
    len_bits: usize,
}

impl BitString {
    /// Builds from whole bytes.
    pub fn from_bytes(bytes: &[u8]) -> BitString {
        BitString { bytes: bytes.to_vec(), len_bits: bytes.len() * 8 }
    }

    /// The empty bitstring (the MHT root path).
    pub fn empty() -> BitString {
        BitString { bytes: Vec::new(), len_bits: 0 }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len_bits
    }

    /// True for the empty string.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// Bit `i`, MSB-first.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len_bits, "bit index {i} out of range ({})", self.len_bits);
        (self.bytes[i / 8] >> (7 - i % 8)) & 1 == 1
    }

    /// The prefix consisting of the first `n` bits.
    pub fn prefix(&self, n: usize) -> BitString {
        assert!(n <= self.len_bits);
        let nbytes = n.div_ceil(8);
        let mut bytes = self.bytes[..nbytes].to_vec();
        // Zero the unused low bits of the final byte so equal prefixes
        // compare equal regardless of origin.
        if n % 8 != 0 {
            let mask = 0xffu8 << (8 - n % 8);
            if let Some(last) = bytes.last_mut() {
                *last &= mask;
            }
        }
        BitString { bytes, len_bits: n }
    }

    /// Appends a single bit.
    pub fn push(&self, bit: bool) -> BitString {
        let mut out = self.prefix(self.len_bits);
        let i = out.len_bits;
        if i / 8 >= out.bytes.len() {
            out.bytes.push(0);
        }
        if bit {
            out.bytes[i / 8] |= 1 << (7 - i % 8);
        }
        out.len_bits = i + 1;
        out
    }

    /// True if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &BitString) -> bool {
        if self.len_bits > other.len_bits {
            return false;
        }
        *self == other.prefix(self.len_bits)
    }

    /// Canonical bytes for hashing: bit length then padded bytes.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.bytes.len());
        out.extend_from_slice(&(self.len_bits as u32).to_be_bytes());
        out.extend_from_slice(&self.bytes);
        out
    }
}

impl std::fmt::Debug for BitString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitString(")?;
        for i in 0..self.len_bits.min(64) {
            write!(f, "{}", self.bit(i) as u8)?;
        }
        if self.len_bits > 64 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

/// A prefix-free MHT leaf label, as the paper's `rule(x)` / `var(v)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Label {
    /// A route-flow-graph variable vertex.
    Var(u32),
    /// A route-flow-graph operator (rule) vertex.
    Rule(u32),
    /// A commitment slot for protocol metadata (e.g. the bit vector
    /// `b_1..b_k` of the minimum operator, §3.3), indexed.
    Slot(u32, u32),
    /// Free-form label (length-prefixed, still prefix-free).
    Custom(Vec<u8>),
}

impl Label {
    const TAG_VAR: u8 = 0x01;
    const TAG_RULE: u8 = 0x02;
    const TAG_SLOT: u8 = 0x03;
    const TAG_CUSTOM: u8 = 0x04;

    /// Encodes to the prefix-free bitstring that addresses the MHT leaf.
    pub fn to_bits(&self) -> BitString {
        let mut bytes = Vec::new();
        match self {
            Label::Var(v) => {
                bytes.push(Self::TAG_VAR);
                bytes.extend_from_slice(&v.to_be_bytes());
            }
            Label::Rule(r) => {
                bytes.push(Self::TAG_RULE);
                bytes.extend_from_slice(&r.to_be_bytes());
            }
            Label::Slot(group, idx) => {
                bytes.push(Self::TAG_SLOT);
                bytes.extend_from_slice(&group.to_be_bytes());
                bytes.extend_from_slice(&idx.to_be_bytes());
            }
            Label::Custom(data) => {
                bytes.push(Self::TAG_CUSTOM);
                bytes.extend_from_slice(&(data.len() as u16).to_be_bytes());
                bytes.extend_from_slice(data);
            }
        }
        BitString::from_bytes(&bytes)
    }
}

impl Wire for Label {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Label::Var(v) => {
                buf.push(Self::TAG_VAR);
                v.encode(buf);
            }
            Label::Rule(r) => {
                buf.push(Self::TAG_RULE);
                r.encode(buf);
            }
            Label::Slot(g, i) => {
                buf.push(Self::TAG_SLOT);
                g.encode(buf);
                i.encode(buf);
            }
            Label::Custom(d) => {
                buf.push(Self::TAG_CUSTOM);
                d.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            Self::TAG_VAR => Ok(Label::Var(u32::decode(r)?)),
            Self::TAG_RULE => Ok(Label::Rule(u32::decode(r)?)),
            Self::TAG_SLOT => Ok(Label::Slot(u32::decode(r)?, u32::decode(r)?)),
            Self::TAG_CUSTOM => Ok(Label::Custom(Vec::<u8>::decode(r)?)),
            _ => Err(WireError::Invalid("unknown label tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bit_access_msb_first() {
        let b = BitString::from_bytes(&[0b1010_0000]);
        assert!(b.bit(0));
        assert!(!b.bit(1));
        assert!(b.bit(2));
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn push_and_prefix() {
        let mut b = BitString::empty();
        for bit in [true, false, true, true] {
            b = b.push(bit);
        }
        assert_eq!(b.len(), 4);
        assert!(b.bit(0) && !b.bit(1) && b.bit(2) && b.bit(3));
        let p = b.prefix(2);
        assert_eq!(p.len(), 2);
        assert!(p.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&p));
        assert!(BitString::empty().is_prefix_of(&b));
    }

    #[test]
    fn prefix_normalizes_trailing_bits() {
        // Prefixes of different strings that agree on the first n bits
        // must be equal as values (needed for HashMap keys).
        let a = BitString::from_bytes(&[0b1100_1111]);
        let b = BitString::from_bytes(&[0b1100_0000]);
        assert_eq!(a.prefix(4), b.prefix(4));
        assert_ne!(a.prefix(5), b.prefix(5));
    }

    #[test]
    fn labels_are_prefix_free() {
        let labels = vec![
            Label::Var(0),
            Label::Var(1),
            Label::Var(u32::MAX),
            Label::Rule(0),
            Label::Rule(1),
            Label::Slot(0, 0),
            Label::Slot(0, 1),
            Label::Slot(1, 0),
            Label::Custom(vec![]),
            Label::Custom(vec![1]),
            Label::Custom(vec![1, 2]),
            Label::Custom(vec![0x01, 0x00, 0x00, 0x00, 0x00]), // mimics Var(0) body
        ];
        for (i, a) in labels.iter().enumerate() {
            for (j, b) in labels.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (ba, bb) = (a.to_bits(), b.to_bits());
                assert!(!ba.is_prefix_of(&bb), "{a:?} is a prefix of {b:?}");
            }
        }
    }

    #[test]
    fn label_wire_round_trip() {
        for l in
            [Label::Var(7), Label::Rule(9), Label::Slot(3, 4), Label::Custom(b"burst".to_vec())]
        {
            let back: Label = pvr_crypto::decode_exact(&l.to_wire()).unwrap();
            assert_eq!(back, l);
        }
    }

    #[test]
    fn canonical_bytes_distinguish_lengths() {
        let a = BitString::from_bytes(&[0]).prefix(3);
        let b = BitString::from_bytes(&[0]).prefix(4);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }

    proptest! {
        #[test]
        fn prop_distinct_labels_distinct_bits(a in any::<u32>(), b in any::<u32>()) {
            prop_assume!(a != b);
            prop_assert_ne!(Label::Var(a).to_bits(), Label::Var(b).to_bits());
            prop_assert_ne!(Label::Var(a).to_bits(), Label::Rule(a).to_bits());
        }

        #[test]
        fn prop_prefix_of_self(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
            let b = BitString::from_bytes(&bytes);
            prop_assert!(b.is_prefix_of(&b));
            prop_assert!(b.prefix(b.len() / 2).is_prefix_of(&b));
        }

        #[test]
        fn prop_push_bit_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..40)) {
            let mut b = BitString::empty();
            for &bit in &bits {
                b = b.push(bit);
            }
            prop_assert_eq!(b.len(), bits.len());
            for (i, &bit) in bits.iter().enumerate() {
                prop_assert_eq!(b.bit(i), bit);
            }
        }
    }
}
