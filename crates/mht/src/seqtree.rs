//! Sequential (complete binary) Merkle trees for batched signing.
//!
//! §3.8: "This overhead can be burdensome during BGP message bursts, but
//! it seems feasible to sign messages in batches, perhaps using a small
//! MHT to reveal batched routes individually." This module is that small
//! MHT: a complete binary tree over an ordered list of items. The sender
//! signs the root once per burst; each receiver gets its item plus a
//! log-size path. Experiment E5 measures the amortization.

use pvr_crypto::encoding::{decode_seq, encode_seq, Reader, Wire, WireError};
use pvr_crypto::sha256::{sha256_concat, Digest};

/// Leaf hash, domain-separated from inner nodes to preclude
/// second-preimage splicing attacks.
fn leaf_hash(index: u64, item: &[u8]) -> Digest {
    sha256_concat(&[b"pvr.seq.leaf", &index.to_be_bytes(), item])
}

fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_concat(&[b"pvr.seq.node", left.as_bytes(), right.as_bytes()])
}

/// A Merkle tree over an ordered batch of byte strings.
pub struct SeqTree {
    /// levels\[0\] = leaf hashes, last level = [root]. Odd nodes are
    /// promoted (duplicated-free: an odd last node moves up unchanged).
    levels: Vec<Vec<Digest>>,
    items: Vec<Vec<u8>>,
}

impl SeqTree {
    /// Builds a tree over `items`. Empty batches are allowed (root is a
    /// fixed domain-separated constant).
    pub fn build(items: &[Vec<u8>]) -> SeqTree {
        let leaves: Vec<Digest> =
            items.iter().enumerate().map(|(i, it)| leaf_hash(i as u64, it)).collect();
        let mut levels = vec![leaves];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                match pair {
                    [l, r] => next.push(node_hash(l, r)),
                    [l] => next.push(*l), // odd node promoted unchanged
                    _ => unreachable!(),
                }
            }
            levels.push(next);
        }
        SeqTree { levels, items: items.to_vec() }
    }

    /// The root to be signed once per batch.
    pub fn root(&self) -> Digest {
        match self.levels.last().and_then(|l| l.first()) {
            Some(r) => *r,
            None => sha256_concat(&[b"pvr.seq.empty"]),
        }
    }

    /// Number of items in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Builds the proof that item `index` is in the batch.
    pub fn prove(&self, index: usize) -> Option<SeqProof> {
        if index >= self.items.len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut pos = index;
        // All levels except the root level contribute a sibling when one
        // exists (odd promoted nodes have none at that level).
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sib = pos ^ 1;
            if sib < level.len() {
                siblings.push(Some(level[sib]));
            } else {
                siblings.push(None);
            }
            pos /= 2;
        }
        Some(SeqProof { index: index as u64, item: self.items[index].clone(), siblings })
    }
}

/// Proof that one item of a signed batch has a given value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeqProof {
    /// Position of the item in the batch.
    pub index: u64,
    /// The item itself.
    pub item: Vec<u8>,
    /// Sibling hashes from leaf level upward; `None` where the node was
    /// promoted without a sibling.
    pub siblings: Vec<Option<Digest>>,
}

impl SeqProof {
    /// Verifies against the signed batch root.
    pub fn verify(&self, root: &Digest) -> bool {
        let mut h = leaf_hash(self.index, &self.item);
        let mut pos = self.index as usize;
        for sib in &self.siblings {
            h = match sib {
                Some(s) if pos % 2 == 0 => node_hash(&h, s),
                Some(s) => node_hash(s, &h),
                None => h, // promoted odd node
            };
            pos /= 2;
        }
        h == *root
    }

    /// Serialized size in bytes (for the E5 overhead accounting).
    pub fn byte_size(&self) -> usize {
        self.to_wire().len()
    }
}

impl Wire for SeqProof {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.index.encode(buf);
        self.item.encode(buf);
        encode_seq(&self.siblings, buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SeqProof {
            index: u64::decode(r)?,
            item: Vec::<u8>::decode(r)?,
            siblings: decode_seq(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn batch(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("update-{i}").into_bytes()).collect()
    }

    #[test]
    fn every_item_provable_all_sizes() {
        // Cover powers of two, odd sizes, and 1.
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33] {
            let t = SeqTree::build(&batch(n));
            for i in 0..n {
                let p = t.prove(i).unwrap();
                assert!(p.verify(&t.root()), "item {i} of {n}");
                assert_eq!(p.item, format!("update-{i}").into_bytes());
            }
        }
    }

    #[test]
    fn out_of_range_unprovable() {
        let t = SeqTree::build(&batch(4));
        assert!(t.prove(4).is_none());
        assert!(t.prove(100).is_none());
    }

    #[test]
    fn empty_batch_has_stable_root() {
        let a = SeqTree::build(&[]);
        let b = SeqTree::build(&[]);
        assert_eq!(a.root(), b.root());
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn wrong_root_rejected() {
        let t1 = SeqTree::build(&batch(8));
        let t2 = SeqTree::build(&batch(9));
        let p = t1.prove(0).unwrap();
        assert!(!p.verify(&t2.root()));
    }

    #[test]
    fn tampered_item_rejected() {
        let t = SeqTree::build(&batch(8));
        let mut p = t.prove(3).unwrap();
        p.item = b"forged".to_vec();
        assert!(!p.verify(&t.root()));
    }

    #[test]
    fn reindexed_item_rejected() {
        // The same payload at a different claimed index must fail: leaf
        // hashes bind the position.
        let items = vec![b"same".to_vec(), b"same".to_vec()];
        let t = SeqTree::build(&items);
        let mut p = t.prove(0).unwrap();
        p.index = 1;
        assert!(!p.verify(&t.root()));
    }

    #[test]
    fn proof_depth_is_logarithmic() {
        let t = SeqTree::build(&batch(1024));
        let p = t.prove(512).unwrap();
        assert_eq!(p.siblings.len(), 10);
    }

    #[test]
    fn wire_round_trip() {
        let t = SeqTree::build(&batch(5));
        let p = t.prove(4).unwrap();
        let back: SeqProof = pvr_crypto::decode_exact(&p.to_wire()).unwrap();
        assert_eq!(back, p);
        assert!(back.verify(&t.root()));
    }

    proptest! {
        #[test]
        fn prop_all_verify(n in 1usize..80) {
            let t = SeqTree::build(&batch(n));
            for i in 0..n {
                prop_assert!(t.prove(i).unwrap().verify(&t.root()));
            }
        }

        #[test]
        fn prop_order_matters(mut items in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..8), 2..10)) {
            let t1 = SeqTree::build(&items);
            items.swap(0, 1);
            prop_assume!(items[0] != items[1]);
            let t2 = SeqTree::build(&items);
            prop_assert_ne!(t1.root(), t2.root());
        }
    }
}
