//! The route-flow graph: vertices, edges, validation, and evaluation.
//!
//! §2.1: "the connections between operators and variables will form a
//! graph. In analogy to data flow graphs, we will refer to this graph as
//! the route-flow graph." §3.5: "an edge (o, v) from an operator o to a
//! variable v indicates that v is computed by o; an edge (v, o)
//! indicates that v is an input to o."

use crate::ops::OperatorKind;
use pvr_bgp::{Asn, Route};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a variable vertex.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

/// Identifier of an operator vertex.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u32);

/// Any vertex of the graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum VertexRef {
    /// A variable vertex.
    Var(VarId),
    /// An operator vertex.
    Op(OpId),
}

/// What a variable represents.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// An input: the route(s) advertised by a neighbor (the paper's
    /// r_1..r_k in Figure 1).
    Input {
        /// The advertising neighbor.
        neighbor: Asn,
    },
    /// An intermediate value.
    Internal,
    /// An output exported to a neighbor (the paper's r_o).
    Output {
        /// The receiving neighbor.
        neighbor: Asn,
    },
}

/// A variable vertex.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Variable {
    /// Identifier.
    pub id: VarId,
    /// Human-readable name (for traces and docs).
    pub name: String,
    /// Role of the variable.
    pub kind: VarKind,
}

/// An operator vertex with its wiring.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Operator {
    /// Identifier.
    pub id: OpId,
    /// The function computed.
    pub kind: OperatorKind,
    /// Input variables, in order (order matters for `ShorterOf`).
    pub inputs: Vec<VarId>,
    /// The variable this operator computes.
    pub output: VarId,
}

/// Structural errors detected by [`RouteFlowGraph::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An operator references a variable that does not exist.
    UnknownVar(VarId),
    /// Two operators write the same variable.
    MultipleWriters(VarId),
    /// An input variable is computed by an operator.
    InputComputed(VarId),
    /// An operator has the wrong number of inputs.
    BadArity {
        /// The offending operator.
        op: OpId,
        /// Required input count.
        expected: usize,
        /// Actual input count.
        got: usize,
    },
    /// The graph contains a cycle through this variable.
    Cycle(VarId),
    /// An output variable is never computed.
    OutputNeverComputed(VarId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownVar(v) => write!(f, "unknown variable {v:?}"),
            GraphError::MultipleWriters(v) => write!(f, "variable {v:?} has multiple writers"),
            GraphError::InputComputed(v) => write!(f, "input variable {v:?} is computed"),
            GraphError::BadArity { op, expected, got } => {
                write!(f, "operator {op:?} takes {expected} inputs, got {got}")
            }
            GraphError::Cycle(v) => write!(f, "cycle through variable {v:?}"),
            GraphError::OutputNeverComputed(v) => write!(f, "output {v:?} never computed"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated route-flow graph.
#[derive(Clone, Debug, Default)]
pub struct RouteFlowGraph {
    vars: BTreeMap<VarId, Variable>,
    ops: BTreeMap<OpId, Operator>,
    next_var: u32,
    next_op: u32,
}

impl RouteFlowGraph {
    /// An empty graph.
    pub fn new() -> RouteFlowGraph {
        RouteFlowGraph::default()
    }

    /// Adds an input variable for `neighbor`'s advertised route.
    pub fn add_input(&mut self, name: &str, neighbor: Asn) -> VarId {
        self.add_var(name, VarKind::Input { neighbor })
    }

    /// Adds an internal variable.
    pub fn add_internal(&mut self, name: &str) -> VarId {
        self.add_var(name, VarKind::Internal)
    }

    /// Adds an output variable exported to `neighbor`.
    pub fn add_output(&mut self, name: &str, neighbor: Asn) -> VarId {
        self.add_var(name, VarKind::Output { neighbor })
    }

    fn add_var(&mut self, name: &str, kind: VarKind) -> VarId {
        let id = VarId(self.next_var);
        self.next_var += 1;
        self.vars.insert(id, Variable { id, name: name.to_string(), kind });
        id
    }

    /// Adds an operator computing `output` from `inputs`.
    pub fn add_op(&mut self, kind: OperatorKind, inputs: &[VarId], output: VarId) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        self.ops.insert(id, Operator { id, kind, inputs: inputs.to_vec(), output });
        id
    }

    /// The variable record.
    pub fn var(&self, id: VarId) -> Option<&Variable> {
        self.vars.get(&id)
    }

    /// The operator record.
    pub fn op(&self, id: OpId) -> Option<&Operator> {
        self.ops.get(&id)
    }

    /// All variables, in id order.
    pub fn vars(&self) -> impl Iterator<Item = &Variable> {
        self.vars.values()
    }

    /// All operators, in id order.
    pub fn ops(&self) -> impl Iterator<Item = &Operator> {
        self.ops.values()
    }

    /// Input variables and their neighbors.
    pub fn inputs(&self) -> Vec<(VarId, Asn)> {
        self.vars
            .values()
            .filter_map(|v| match v.kind {
                VarKind::Input { neighbor } => Some((v.id, neighbor)),
                _ => None,
            })
            .collect()
    }

    /// Output variables and their neighbors.
    pub fn outputs(&self) -> Vec<(VarId, Asn)> {
        self.vars
            .values()
            .filter_map(|v| match v.kind {
                VarKind::Output { neighbor } => Some((v.id, neighbor)),
                _ => None,
            })
            .collect()
    }

    /// The operator that computes `var`, if any.
    pub fn writer_of(&self, var: VarId) -> Option<&Operator> {
        self.ops.values().find(|o| o.output == var)
    }

    /// The operators that read `var`.
    pub fn readers_of(&self, var: VarId) -> Vec<&Operator> {
        self.ops.values().filter(|o| o.inputs.contains(&var)).collect()
    }

    /// Checks all structural invariants; returns a topological order of
    /// the operators on success.
    pub fn validate(&self) -> Result<Vec<OpId>, GraphError> {
        // References and writer uniqueness.
        let mut writer: BTreeMap<VarId, OpId> = BTreeMap::new();
        for op in self.ops.values() {
            for &v in op.inputs.iter().chain([&op.output]) {
                if !self.vars.contains_key(&v) {
                    return Err(GraphError::UnknownVar(v));
                }
            }
            if let Some(expected) = op.kind.arity() {
                if op.inputs.len() != expected {
                    return Err(GraphError::BadArity { op: op.id, expected, got: op.inputs.len() });
                }
            }
            if writer.insert(op.output, op.id).is_some() {
                return Err(GraphError::MultipleWriters(op.output));
            }
            if matches!(self.vars[&op.output].kind, VarKind::Input { .. }) {
                return Err(GraphError::InputComputed(op.output));
            }
        }
        // Outputs must be computed.
        for (v, _) in self.outputs() {
            if !writer.contains_key(&v) {
                return Err(GraphError::OutputNeverComputed(v));
            }
        }
        // Topological sort over operators (Kahn).
        let mut order = Vec::with_capacity(self.ops.len());
        let mut resolved: BTreeSet<VarId> =
            self.vars.keys().filter(|v| !writer.contains_key(v)).copied().collect();
        let mut remaining: BTreeMap<OpId, &Operator> =
            self.ops.iter().map(|(&id, op)| (id, op)).collect();
        loop {
            let ready: Vec<OpId> = remaining
                .values()
                .filter(|op| op.inputs.iter().all(|i| resolved.contains(i)))
                .map(|op| op.id)
                .collect();
            if ready.is_empty() {
                break;
            }
            for id in ready {
                let op = remaining.remove(&id).unwrap();
                resolved.insert(op.output);
                order.push(id);
            }
        }
        if let Some(op) = remaining.values().next() {
            return Err(GraphError::Cycle(op.output));
        }
        Ok(order)
    }

    /// Evaluates the graph on the given neighbor inputs, returning all
    /// variable values plus the per-operator trace (the raw material for
    /// PVR evidence). Neighbors absent from `inputs` contribute the
    /// empty route set.
    pub fn evaluate(&self, inputs: &BTreeMap<Asn, Vec<Route>>) -> Result<Evaluation, GraphError> {
        let order = self.validate()?;
        let mut values: BTreeMap<VarId, Vec<Route>> = BTreeMap::new();
        for v in self.vars.values() {
            if let VarKind::Input { neighbor } = v.kind {
                values.insert(
                    v.id,
                    crate::ops::canonicalize(inputs.get(&neighbor).cloned().unwrap_or_default()),
                );
            }
        }
        let mut trace = Vec::with_capacity(order.len());
        for op_id in order {
            let op = &self.ops[&op_id];
            let in_values: Vec<Vec<Route>> =
                op.inputs.iter().map(|i| values.get(i).cloned().unwrap_or_default()).collect();
            let out = op.kind.apply(&in_values);
            trace.push(OpTrace {
                op: op_id,
                inputs: op.inputs.iter().cloned().zip(in_values).collect(),
                output: (op.output, out.clone()),
            });
            values.insert(op.output, out);
        }
        Ok(Evaluation { values, trace })
    }
}

/// One operator application in an evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpTrace {
    /// The operator.
    pub op: OpId,
    /// Input variable values at application time.
    pub inputs: Vec<(VarId, Vec<Route>)>,
    /// The computed output.
    pub output: (VarId, Vec<Route>),
}

/// The result of evaluating a route-flow graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evaluation {
    /// Final value of every variable.
    pub values: BTreeMap<VarId, Vec<Route>>,
    /// Operator applications in execution order.
    pub trace: Vec<OpTrace>,
}

impl Evaluation {
    /// The value of `var` (empty if unset).
    pub fn value(&self, var: VarId) -> &[Route] {
        self.values.get(&var).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The single route in `var`, if exactly one.
    pub fn single(&self, var: VarId) -> Option<&Route> {
        match self.value(var) {
            [r] => Some(r),
            _ => None,
        }
    }
}

/// Builds the paper's Figure 1 graph: inputs r_1..r_k from `ns`, one
/// `min` operator, output r_o to `b`.
pub fn figure1_graph(ns: &[Asn], b: Asn) -> (RouteFlowGraph, Vec<VarId>, VarId, OpId) {
    let mut g = RouteFlowGraph::new();
    let inputs: Vec<VarId> =
        ns.iter().enumerate().map(|(i, &n)| g.add_input(&format!("r{}", i + 1), n)).collect();
    let out = g.add_output("r_o", b);
    let min = g.add_op(OperatorKind::MinPathLen, &inputs, out);
    (g, inputs, out, min)
}

/// Builds the paper's Figure 2 graph: "I will export some route via
/// N2, …, Nk unless N1 provides a shorter route". Inputs r_1..r_k, a
/// `min` over r_2..r_k into internal v, a `ShorterOf(r_1, v)` into the
/// output.
pub fn figure2_graph(ns: &[Asn], b: Asn) -> (RouteFlowGraph, Vec<VarId>, VarId, OpId, OpId) {
    assert!(ns.len() >= 2, "figure 2 needs at least N1 and N2");
    let mut g = RouteFlowGraph::new();
    let inputs: Vec<VarId> =
        ns.iter().enumerate().map(|(i, &n)| g.add_input(&format!("r{}", i + 1), n)).collect();
    let v = g.add_internal("v");
    let min = g.add_op(OperatorKind::MinPathLen, &inputs[1..], v);
    let out = g.add_output("r_o", b);
    let choose = g.add_op(OperatorKind::ShorterOf, &[inputs[0], v], out);
    (g, inputs, out, min, choose)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OperatorKind;
    use pvr_bgp::{AsPath, Prefix};

    fn route(path: &[u32]) -> Route {
        let mut r = Route::originate(Prefix::parse("10.0.0.0/8").unwrap());
        r.path = AsPath::from_slice(&path.iter().map(|&a| Asn(a)).collect::<Vec<_>>());
        r
    }

    #[test]
    fn figure1_evaluation() {
        let ns = [Asn(1), Asn(2), Asn(3)];
        let (g, _inputs, out, _) = figure1_graph(&ns, Asn(200));
        let mut in_routes = BTreeMap::new();
        in_routes.insert(Asn(1), vec![route(&[1, 9, 9])]);
        in_routes.insert(Asn(2), vec![route(&[2, 9])]);
        in_routes.insert(Asn(3), vec![route(&[3, 9, 9, 9])]);
        let eval = g.evaluate(&in_routes).unwrap();
        assert_eq!(eval.single(out).unwrap().path_len(), 2);
        assert_eq!(eval.trace.len(), 1);
    }

    #[test]
    fn figure1_missing_inputs_are_empty() {
        let ns = [Asn(1), Asn(2)];
        let (g, inputs, out, _) = figure1_graph(&ns, Asn(200));
        let mut in_routes = BTreeMap::new();
        in_routes.insert(Asn(2), vec![route(&[2, 9])]);
        let eval = g.evaluate(&in_routes).unwrap();
        assert!(eval.value(inputs[0]).is_empty());
        assert_eq!(eval.single(out).unwrap().path.asns()[0], Asn(2));
    }

    #[test]
    fn figure2_evaluation_both_branches() {
        let ns = [Asn(1), Asn(2), Asn(3)];
        let (g, _, out, _, _) = figure2_graph(&ns, Asn(200));
        // N1 strictly shorter → N1's route.
        let mut in_routes = BTreeMap::new();
        in_routes.insert(Asn(1), vec![route(&[1, 9])]);
        in_routes.insert(Asn(2), vec![route(&[2, 8, 9])]);
        in_routes.insert(Asn(3), vec![route(&[3, 7, 8, 9])]);
        let eval = g.evaluate(&in_routes).unwrap();
        assert_eq!(eval.single(out).unwrap().path.asns()[0], Asn(1));
        // N1 equal length → N2..Nk side.
        let mut in_routes = BTreeMap::new();
        in_routes.insert(Asn(1), vec![route(&[1, 8, 9])]);
        in_routes.insert(Asn(2), vec![route(&[2, 8, 9])]);
        let eval = g.evaluate(&in_routes).unwrap();
        assert_eq!(eval.single(out).unwrap().path.asns()[0], Asn(2));
    }

    #[test]
    fn validation_rejects_unknown_var() {
        let mut g = RouteFlowGraph::new();
        let out = g.add_output("o", Asn(1));
        g.add_op(OperatorKind::Union, &[VarId(99)], out);
        assert_eq!(g.validate(), Err(GraphError::UnknownVar(VarId(99))));
    }

    #[test]
    fn validation_rejects_multiple_writers() {
        let mut g = RouteFlowGraph::new();
        let i = g.add_input("i", Asn(1));
        let out = g.add_output("o", Asn(2));
        g.add_op(OperatorKind::Union, &[i], out);
        g.add_op(OperatorKind::Existential, &[i], out);
        assert_eq!(g.validate(), Err(GraphError::MultipleWriters(out)));
    }

    #[test]
    fn validation_rejects_computed_input() {
        let mut g = RouteFlowGraph::new();
        let i1 = g.add_input("i1", Asn(1));
        let i2 = g.add_input("i2", Asn(2));
        g.add_op(OperatorKind::Union, &[i1], i2);
        assert_eq!(g.validate(), Err(GraphError::InputComputed(i2)));
    }

    #[test]
    fn validation_rejects_cycle() {
        let mut g = RouteFlowGraph::new();
        let a = g.add_internal("a");
        let b = g.add_internal("b");
        g.add_op(OperatorKind::Union, &[a], b);
        g.add_op(OperatorKind::Union, &[b], a);
        assert!(matches!(g.validate(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn validation_rejects_bad_arity() {
        let mut g = RouteFlowGraph::new();
        let i = g.add_input("i", Asn(1));
        let out = g.add_output("o", Asn(2));
        g.add_op(OperatorKind::ShorterOf, &[i], out);
        assert!(matches!(g.validate(), Err(GraphError::BadArity { .. })));
    }

    #[test]
    fn validation_rejects_uncomputed_output() {
        let mut g = RouteFlowGraph::new();
        g.add_output("o", Asn(2));
        assert!(matches!(g.validate(), Err(GraphError::OutputNeverComputed(_))));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let ns = [Asn(1), Asn(2), Asn(3)];
        let (g, _, _, min, choose) = figure2_graph(&ns, Asn(200));
        let order = g.validate().unwrap();
        let pos_min = order.iter().position(|&o| o == min).unwrap();
        let pos_choose = order.iter().position(|&o| o == choose).unwrap();
        assert!(pos_min < pos_choose);
    }

    #[test]
    fn structure_queries() {
        let ns = [Asn(1), Asn(2)];
        let (g, inputs, out, min) = figure1_graph(&ns, Asn(200));
        assert_eq!(g.writer_of(out).unwrap().id, min);
        assert!(g.writer_of(inputs[0]).is_none());
        assert_eq!(g.readers_of(inputs[0]).len(), 1);
        assert_eq!(g.inputs().len(), 2);
        assert_eq!(g.outputs(), vec![(out, Asn(200))]);
        assert_eq!(g.vars().count(), 3);
        assert_eq!(g.ops().count(), 1);
        assert!(g.var(inputs[0]).is_some());
        assert!(g.op(min).is_some());
    }

    #[test]
    fn deeper_pipeline_evaluates() {
        // union → filter-community → min → output: a 3-operator pipeline.
        let mut g = RouteFlowGraph::new();
        let i1 = g.add_input("i1", Asn(1));
        let i2 = g.add_input("i2", Asn(2));
        let merged = g.add_internal("merged");
        let filtered = g.add_internal("filtered");
        let out = g.add_output("o", Asn(9));
        g.add_op(OperatorKind::Union, &[i1, i2], merged);
        let c = pvr_bgp::Community(65000, 7);
        g.add_op(
            OperatorKind::FilterCommunity { community: c, keep_if_present: true },
            &[merged],
            filtered,
        );
        g.add_op(OperatorKind::MinPathLen, &[filtered], out);
        let mut in_routes = BTreeMap::new();
        in_routes.insert(Asn(1), vec![route(&[1]).with_community(c)]);
        in_routes.insert(Asn(2), vec![route(&[2])]); // untagged, filtered out
        let eval = g.evaluate(&in_routes).unwrap();
        assert_eq!(eval.single(out).unwrap().path.asns()[0], Asn(1));
        assert_eq!(eval.trace.len(), 3);
    }
}
