//! Operators: the units of route computation.
//!
//! §2.1: "a rule is an operation that takes some set of input routes and
//! emits a set of output routes (which may be a single route, or no
//! route at all) … We will refer to these pieces as operators, which
//! operate on variables — typically routes and sets of routes, but also
//! communities, AS paths, prefixes, etc."
//!
//! The two operators the paper constructs protocols for — existential
//! (§3.2) and minimum (§3.3) — are here, along with the wider set §4
//! calls for ("operators that evaluate communities or check for the
//! presence of particular ASes on the path") and the ε-threshold
//! operator needed by promise 3.

use pvr_bgp::{Asn, Community, Prefix, Route};
use pvr_crypto::encoding::{Reader, Wire, WireError};

/// Canonical deterministic ordering of routes, used to break ties
/// whenever an operator must emit "some" single route. Orders by
/// (path length, path contents, prefix, local-pref desc, med, origin).
pub fn canonical_cmp(a: &Route, b: &Route) -> std::cmp::Ordering {
    (a.path_len(), a.path.asns(), a.prefix, std::cmp::Reverse(a.local_pref), a.med).cmp(&(
        b.path_len(),
        b.path.asns(),
        b.prefix,
        std::cmp::Reverse(b.local_pref),
        b.med,
    ))
}

/// Sorts and deduplicates a route set into canonical form.
pub fn canonicalize(mut routes: Vec<Route>) -> Vec<Route> {
    routes.sort_by(canonical_cmp);
    routes.dedup();
    routes
}

/// The kinds of operators a route-flow graph can contain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OperatorKind {
    /// §3.2: emits one route (canonically chosen) iff any input route
    /// exists.
    Existential,
    /// §3.3: emits one route of minimal AS-path length.
    MinPathLen,
    /// Emits one route of maximal LOCAL_PREF (ties broken canonically).
    MaxLocalPref,
    /// Set-valued: keeps routes that carry (or lack) a community.
    FilterCommunity {
        /// The community to test.
        community: Community,
        /// `true` keeps routes with the community, `false` keeps those
        /// without it.
        keep_if_present: bool,
    },
    /// Set-valued: keeps routes whose path does (or does not) contain an
    /// AS.
    FilterAsPresence {
        /// The AS to test for.
        asn: Asn,
        /// `true` keeps routes through `asn`, `false` avoids it.
        keep_if_present: bool,
    },
    /// Set-valued: keeps routes whose prefix is covered by `cover`.
    FilterPrefix {
        /// The covering prefix.
        cover: Prefix,
    },
    /// Set-valued: union of all inputs.
    Union,
    /// Set-valued: routes within `epsilon` hops of the shortest input
    /// (the permitted set of promise 3).
    WithinHops {
        /// Allowed slack above the minimum path length.
        epsilon: usize,
    },
    /// Emits the canonically-first route of the input set (used to
    /// collapse a set-valued operator into an exportable single route).
    PickOne,
    /// Two-input choice: emits the second input's best route unless the
    /// first input offers a strictly shorter one (the Figure 2 operator:
    /// "I will export some route via N2..Nk unless N1 provides a shorter
    /// route"). Input order: `[fallback, preferred]`.
    ShorterOf,
}

impl OperatorKind {
    /// A stable name for display and for the MHT payload encoding.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorKind::Existential => "exists",
            OperatorKind::MinPathLen => "min-path-len",
            OperatorKind::MaxLocalPref => "max-local-pref",
            OperatorKind::FilterCommunity { .. } => "filter-community",
            OperatorKind::FilterAsPresence { .. } => "filter-as",
            OperatorKind::FilterPrefix { .. } => "filter-prefix",
            OperatorKind::Union => "union",
            OperatorKind::WithinHops { .. } => "within-hops",
            OperatorKind::PickOne => "pick-one",
            OperatorKind::ShorterOf => "shorter-of",
        }
    }

    /// The number of input variables the operator requires, if fixed.
    pub fn arity(&self) -> Option<usize> {
        match self {
            OperatorKind::ShorterOf => Some(2),
            _ => None,
        }
    }

    /// Applies the operator to its input route sets.
    pub fn apply(&self, inputs: &[Vec<Route>]) -> Vec<Route> {
        let all = || inputs.iter().flatten().cloned();
        match self {
            OperatorKind::Existential | OperatorKind::PickOne => {
                canonicalize(all().collect()).into_iter().take(1).collect()
            }
            OperatorKind::MinPathLen => {
                let routes = canonicalize(all().collect());
                // canonical order sorts by path length first, so the head
                // is a minimal route.
                routes.into_iter().take(1).collect()
            }
            OperatorKind::MaxLocalPref => {
                let routes = canonicalize(all().collect());
                let best = routes.iter().map(|r| r.local_pref).max();
                match best {
                    None => Vec::new(),
                    Some(lp) => routes.into_iter().filter(|r| r.local_pref == lp).take(1).collect(),
                }
            }
            OperatorKind::FilterCommunity { community, keep_if_present } => canonicalize(
                all().filter(|r| r.has_community(*community) == *keep_if_present).collect(),
            ),
            OperatorKind::FilterAsPresence { asn, keep_if_present } => {
                canonicalize(all().filter(|r| r.path.contains(*asn) == *keep_if_present).collect())
            }
            OperatorKind::FilterPrefix { cover } => {
                canonicalize(all().filter(|r| cover.covers(&r.prefix)).collect())
            }
            OperatorKind::Union => canonicalize(all().collect()),
            OperatorKind::WithinHops { epsilon } => {
                let routes = canonicalize(all().collect());
                let min = routes.first().map(|r| r.path_len());
                match min {
                    None => Vec::new(),
                    Some(m) => routes.into_iter().filter(|r| r.path_len() <= m + epsilon).collect(),
                }
            }
            OperatorKind::ShorterOf => {
                debug_assert_eq!(inputs.len(), 2, "ShorterOf takes [fallback, preferred]");
                let fallback = canonicalize(inputs.first().cloned().unwrap_or_default());
                let preferred = canonicalize(inputs.get(1).cloned().unwrap_or_default());
                match (fallback.first(), preferred.first()) {
                    (None, None) => Vec::new(),
                    (Some(f), None) => vec![f.clone()],
                    (None, Some(p)) => vec![p.clone()],
                    (Some(f), Some(p)) => {
                        // Preferred side wins unless fallback is strictly
                        // shorter.
                        if f.path_len() < p.path_len() {
                            vec![f.clone()]
                        } else {
                            vec![p.clone()]
                        }
                    }
                }
            }
        }
    }
}

impl Wire for OperatorKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            OperatorKind::Existential => buf.push(0),
            OperatorKind::MinPathLen => buf.push(1),
            OperatorKind::MaxLocalPref => buf.push(2),
            OperatorKind::FilterCommunity { community, keep_if_present } => {
                buf.push(3);
                community.encode(buf);
                keep_if_present.encode(buf);
            }
            OperatorKind::FilterAsPresence { asn, keep_if_present } => {
                buf.push(4);
                asn.encode(buf);
                keep_if_present.encode(buf);
            }
            OperatorKind::FilterPrefix { cover } => {
                buf.push(5);
                cover.encode(buf);
            }
            OperatorKind::Union => buf.push(6),
            OperatorKind::WithinHops { epsilon } => {
                buf.push(7);
                (*epsilon as u32).encode(buf);
            }
            OperatorKind::PickOne => buf.push(8),
            OperatorKind::ShorterOf => buf.push(9),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.take(1)?[0] {
            0 => OperatorKind::Existential,
            1 => OperatorKind::MinPathLen,
            2 => OperatorKind::MaxLocalPref,
            3 => OperatorKind::FilterCommunity {
                community: Community::decode(r)?,
                keep_if_present: bool::decode(r)?,
            },
            4 => OperatorKind::FilterAsPresence {
                asn: Asn::decode(r)?,
                keep_if_present: bool::decode(r)?,
            },
            5 => OperatorKind::FilterPrefix { cover: Prefix::decode(r)? },
            6 => OperatorKind::Union,
            7 => OperatorKind::WithinHops { epsilon: u32::decode(r)? as usize },
            8 => OperatorKind::PickOne,
            9 => OperatorKind::ShorterOf,
            _ => return Err(WireError::Invalid("operator tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvr_bgp::AsPath;

    fn route(prefix: &str, path: &[u32]) -> Route {
        let mut r = Route::originate(Prefix::parse(prefix).unwrap());
        r.path = AsPath::from_slice(&path.iter().map(|&a| Asn(a)).collect::<Vec<_>>());
        r
    }

    #[test]
    fn existential_emits_one_iff_any() {
        let op = OperatorKind::Existential;
        assert!(op.apply(&[vec![]]).is_empty());
        let out = op.apply(&[vec![route("10.0.0.0/8", &[1, 2])], vec![route("10.0.0.0/8", &[3])]]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn min_path_len_selects_shortest() {
        let op = OperatorKind::MinPathLen;
        let out = op.apply(&[
            vec![route("10.0.0.0/8", &[1, 2, 3])],
            vec![route("10.0.0.0/8", &[4, 5])],
            vec![route("10.0.0.0/8", &[6, 7, 8, 9])],
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].path_len(), 2);
    }

    #[test]
    fn min_path_len_breaks_ties_deterministically() {
        let op = OperatorKind::MinPathLen;
        let a = route("10.0.0.0/8", &[9, 1]);
        let b = route("10.0.0.0/8", &[2, 1]);
        let out1 = op.apply(&[vec![a.clone()], vec![b.clone()]]);
        let out2 = op.apply(&[vec![b], vec![a]]);
        assert_eq!(out1, out2);
        assert_eq!(out1[0].path.asns()[0], Asn(2), "lexicographically first path wins");
    }

    #[test]
    fn max_local_pref() {
        let op = OperatorKind::MaxLocalPref;
        let mut a = route("10.0.0.0/8", &[1]);
        a.local_pref = 300;
        let b = route("10.0.0.0/8", &[2]);
        let out = op.apply(&[vec![a.clone(), b]]);
        assert_eq!(out, vec![a]);
        assert!(op.apply(&[vec![]]).is_empty());
    }

    #[test]
    fn community_filter_both_polarities() {
        let c = Community(65000, 1);
        let tagged = route("10.0.0.0/8", &[1]).with_community(c);
        let plain = route("10.0.0.0/8", &[2]);
        let keep = OperatorKind::FilterCommunity { community: c, keep_if_present: true };
        let drop = OperatorKind::FilterCommunity { community: c, keep_if_present: false };
        assert_eq!(keep.apply(&[vec![tagged.clone(), plain.clone()]]), vec![tagged.clone()]);
        assert_eq!(drop.apply(&[vec![tagged, plain.clone()]]), vec![plain]);
    }

    #[test]
    fn as_presence_filter() {
        let via3 = route("10.0.0.0/8", &[1, 3]);
        let clean = route("10.0.0.0/8", &[2, 4]);
        let avoid = OperatorKind::FilterAsPresence { asn: Asn(3), keep_if_present: false };
        assert_eq!(avoid.apply(&[vec![via3.clone(), clean.clone()]]), vec![clean]);
        let require = OperatorKind::FilterAsPresence { asn: Asn(3), keep_if_present: true };
        assert_eq!(require.apply(&[vec![via3.clone(), route("10.0.0.0/8", &[2, 4])]]), vec![via3]);
    }

    #[test]
    fn prefix_filter() {
        let in10 = route("10.1.0.0/16", &[1]);
        let out10 = route("192.168.0.0/16", &[2]);
        let op = OperatorKind::FilterPrefix { cover: Prefix::parse("10.0.0.0/8").unwrap() };
        assert_eq!(op.apply(&[vec![in10.clone(), out10]]), vec![in10]);
    }

    #[test]
    fn union_merges_and_dedups() {
        let a = route("10.0.0.0/8", &[1]);
        let b = route("10.0.0.0/8", &[2]);
        let op = OperatorKind::Union;
        let out = op.apply(&[vec![a.clone(), b.clone()], vec![a.clone()]]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn within_hops_epsilon() {
        let r2 = route("10.0.0.0/8", &[1, 2]);
        let r3 = route("10.0.0.0/8", &[3, 4, 5]);
        let r5 = route("10.0.0.0/8", &[4, 5, 6, 7, 8]);
        let op = OperatorKind::WithinHops { epsilon: 1 };
        let out = op.apply(&[vec![r2.clone(), r3.clone(), r5]]);
        assert_eq!(out, vec![r2, r3]);
        assert!(op.apply(&[vec![]]).is_empty());
        // epsilon 0 is exactly the min set.
        let op0 = OperatorKind::WithinHops { epsilon: 0 };
        let out = op0.apply(&[vec![route("10.0.0.0/8", &[1]), route("10.0.0.0/8", &[2, 3])]]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn shorter_of_figure2_semantics() {
        let op = OperatorKind::ShorterOf;
        let n1_short = route("10.0.0.0/8", &[1]);
        let n1_long = route("10.0.0.0/8", &[1, 8, 9]);
        let rest = route("10.0.0.0/8", &[2, 3]);
        // N1 strictly shorter → N1 wins.
        assert_eq!(op.apply(&[vec![n1_short.clone()], vec![rest.clone()]]), vec![n1_short]);
        // Tie or longer → preferred (N2..Nk) side wins.
        let n1_tie = route("10.0.0.0/8", &[1, 9]);
        assert_eq!(op.apply(&[vec![n1_tie], vec![rest.clone()]]), vec![rest.clone()]);
        assert_eq!(op.apply(&[vec![n1_long], vec![rest.clone()]]), vec![rest.clone()]);
        // Either side empty → other side.
        assert_eq!(op.apply(&[vec![], vec![rest.clone()]]), vec![rest.clone()]);
        assert_eq!(op.apply(&[vec![rest.clone()], vec![]]), vec![rest]);
        assert!(op.apply(&[vec![], vec![]]).is_empty());
    }

    #[test]
    fn pick_one_is_canonical_head() {
        let a = route("10.0.0.0/8", &[5]);
        let b = route("10.0.0.0/8", &[2, 3]);
        let op = OperatorKind::PickOne;
        assert_eq!(op.apply(&[vec![b, a.clone()]]), vec![a]);
    }

    #[test]
    fn arity_constraints() {
        assert_eq!(OperatorKind::ShorterOf.arity(), Some(2));
        assert_eq!(OperatorKind::Union.arity(), None);
    }

    #[test]
    fn wire_round_trip_all_kinds() {
        let kinds = vec![
            OperatorKind::Existential,
            OperatorKind::MinPathLen,
            OperatorKind::MaxLocalPref,
            OperatorKind::FilterCommunity { community: Community(1, 2), keep_if_present: true },
            OperatorKind::FilterAsPresence { asn: Asn(3), keep_if_present: false },
            OperatorKind::FilterPrefix { cover: Prefix::parse("10.0.0.0/8").unwrap() },
            OperatorKind::Union,
            OperatorKind::WithinHops { epsilon: 2 },
            OperatorKind::PickOne,
            OperatorKind::ShorterOf,
        ];
        for k in kinds {
            let back: OperatorKind = pvr_crypto::decode_exact(&k.to_wire()).unwrap();
            assert_eq!(back, k);
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn canonicalize_dedups_and_orders() {
        let a = route("10.0.0.0/8", &[1]);
        let b = route("10.0.0.0/8", &[2, 3]);
        let out = canonicalize(vec![b.clone(), a.clone(), a.clone()]);
        assert_eq!(out, vec![a, b]);
    }
}
