//! # pvr-rfg — route-flow graphs, access control, and promises
//!
//! The modeling layer of the PVR paper (§2):
//!
//! * [`ops`] — operators ("an operation that takes some set of input
//!   routes and emits a set of output routes"), including the paper's
//!   existential (§3.2) and minimum (§3.3) operators, the Figure 2
//!   `ShorterOf` choice, filters over communities / AS presence /
//!   prefixes, and the ε-threshold operator;
//! * [`graph`] — the route-flow graph itself, with validation,
//!   topological evaluation, and per-operator traces, plus ready-made
//!   builders for the paper's Figure 1 and Figure 2 graphs;
//! * [`access`] — the α access-control function (content vs. structure
//!   visibility, §2.2/§3.7) and the paper's example policy;
//! * [`promise`] — the §2 promise ladder with violation semantics
//!   ("permitted set" checking), the §2.2 static implementation check,
//!   and the §4 minimum-access check.

pub mod access;
pub mod dsl;
pub mod graph;
pub mod ops;
pub mod promise;

pub use access::{Access, AccessPolicy};
pub use dsl::{compile as compile_policy, CompiledPolicy, DslError};
pub use graph::{
    figure1_graph, figure2_graph, Evaluation, GraphError, OpId, OpTrace, Operator, RouteFlowGraph,
    VarId, VarKind, Variable, VertexRef,
};
pub use ops::{canonical_cmp, canonicalize, OperatorKind};
pub use promise::{Promise, PromiseViolation};
