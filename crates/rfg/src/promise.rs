//! Promises: what an AS guarantees its neighbor about route selection.
//!
//! §2 lists the promise ladder this module implements verbatim:
//!
//! 1. "I will give you the shortest route I receive."
//! 2. "I will give you the shortest route out of those received from a
//!    specific subset of neighbors."
//! 3. "I will give you a route no more than ε hops longer than my best
//!    route."
//! 4. "The route you get is no longer than what I tell anybody else."
//!
//! plus the existential promise of §3.2 and the Figure 2 promise ("I
//! will export some route via N2, …, Nk unless N1 provides a shorter
//! route").
//!
//! Each promise defines, "for each set of input routes the AS might
//! receive, some set of permissible routes that its output must be drawn
//! from. A violation occurs whenever an AS emits a route that was not in
//! its permitted set, given the inputs it had received" — implemented by
//! [`Promise::check`]. [`Promise::implemented_by`] is the §2.2 static
//! check ("based purely on static inspection of the route-flow graph"),
//! and [`Promise::verifiable_under`] is §4's minimum-access check.

use crate::access::AccessPolicy;
use crate::graph::{RouteFlowGraph, VarKind, VertexRef};
use crate::ops::OperatorKind;
use pvr_bgp::{Asn, Route};
use std::collections::{BTreeMap, BTreeSet};

/// A promise made by an AS to the neighbor receiving its output.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Promise {
    /// §2 promise 1: the exported route is a shortest received route.
    ShortestOverall,
    /// §2 promise 2: shortest among routes from `subset`.
    ShortestOfSubset {
        /// The neighbors whose routes compete.
        subset: BTreeSet<Asn>,
    },
    /// §2 promise 3: within `epsilon` hops of the best received route.
    WithinHopsOfBest {
        /// Allowed slack in hops.
        epsilon: usize,
    },
    /// §2 promise 4: no longer than any route exported to other
    /// neighbors. (Interpretation: receiving *no* route while another
    /// neighbor receives one counts as a violation — "no route" is
    /// infinitely long.)
    NoLongerThanOthers,
    /// §3.2: a route is exported iff some neighbor in `subset` provided
    /// one, and the exported route is one of those provided.
    Existential {
        /// The neighbors whose routes count.
        subset: BTreeSet<Asn>,
    },
    /// Figure 2: export some route from `preferred` unless `fallback`
    /// provides a strictly shorter one.
    PreferUnlessShorter {
        /// N1 in the paper's example.
        fallback: Asn,
        /// N2..Nk.
        preferred: BTreeSet<Asn>,
    },
}

/// Why an output violated a promise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PromiseViolation {
    /// A route should have been exported, but none was.
    MissingOutput,
    /// A route was exported although none was permitted.
    UnexpectedOutput,
    /// The exported route is not among the received input routes.
    NotAnInputRoute,
    /// The exported route exceeds the permitted length.
    TooLong {
        /// Exported path length.
        got: usize,
        /// Maximum permitted length.
        bound: usize,
    },
    /// The exported route came from outside the permitted neighbor set.
    WrongSource,
    /// Another neighbor received a shorter route (promise 4).
    ShorterElsewhere {
        /// The favored neighbor.
        other: Asn,
        /// Our route's length (`usize::MAX` encodes "no route").
        got: usize,
        /// Their route's length.
        theirs: usize,
    },
}

impl std::fmt::Display for PromiseViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PromiseViolation::MissingOutput => write!(f, "route withheld"),
            PromiseViolation::UnexpectedOutput => write!(f, "route exported but none permitted"),
            PromiseViolation::NotAnInputRoute => write!(f, "exported route was never received"),
            PromiseViolation::TooLong { got, bound } => {
                write!(f, "exported {got}-hop route, permitted at most {bound}")
            }
            PromiseViolation::WrongSource => write!(f, "route from outside the promised subset"),
            PromiseViolation::ShorterElsewhere { other, got, theirs } => {
                write!(f, "{other} got {theirs} hops, we got {got}")
            }
        }
    }
}

impl std::error::Error for PromiseViolation {}

/// Flattens the per-neighbor inputs into (neighbor, route) pairs,
/// restricted to `subset` if given.
fn flat_inputs<'a>(
    inputs: &'a BTreeMap<Asn, Vec<Route>>,
    subset: Option<&BTreeSet<Asn>>,
) -> Vec<(Asn, &'a Route)> {
    inputs
        .iter()
        .filter(|(n, _)| subset.is_none_or(|s| s.contains(n)))
        .flat_map(|(&n, rs)| rs.iter().map(move |r| (n, r)))
        .collect()
}

impl Promise {
    /// Checks the promise against what was actually received and
    /// exported. `outputs` maps each neighbor to the route exported to
    /// it (pre-prepend, i.e. the value of the output variable); `to` is
    /// the neighbor this promise was made to.
    pub fn check(
        &self,
        inputs: &BTreeMap<Asn, Vec<Route>>,
        outputs: &BTreeMap<Asn, Option<Route>>,
        to: Asn,
    ) -> Result<(), PromiseViolation> {
        let out = outputs.get(&to).cloned().flatten();
        match self {
            Promise::ShortestOverall => {
                Self::check_shortest(&flat_inputs(inputs, None), out.as_ref())
            }
            Promise::ShortestOfSubset { subset } => {
                Self::check_shortest(&flat_inputs(inputs, Some(subset)), out.as_ref())
            }
            Promise::WithinHopsOfBest { epsilon } => {
                let pool = flat_inputs(inputs, None);
                let min = pool.iter().map(|(_, r)| r.path_len()).min();
                match (min, out.as_ref()) {
                    (None, None) => Ok(()),
                    (None, Some(_)) => Err(PromiseViolation::UnexpectedOutput),
                    (Some(_), None) => Err(PromiseViolation::MissingOutput),
                    (Some(m), Some(r)) => {
                        if !pool.iter().any(|(_, i)| *i == r) {
                            return Err(PromiseViolation::NotAnInputRoute);
                        }
                        if r.path_len() > m + epsilon {
                            return Err(PromiseViolation::TooLong {
                                got: r.path_len(),
                                bound: m + epsilon,
                            });
                        }
                        Ok(())
                    }
                }
            }
            Promise::NoLongerThanOthers => {
                let my_len = out.as_ref().map(|r| r.path_len()).unwrap_or(usize::MAX);
                for (&other, other_out) in outputs {
                    if other == to {
                        continue;
                    }
                    if let Some(r) = other_out {
                        if r.path_len() < my_len {
                            return Err(PromiseViolation::ShorterElsewhere {
                                other,
                                got: my_len,
                                theirs: r.path_len(),
                            });
                        }
                    }
                }
                Ok(())
            }
            Promise::Existential { subset } => {
                let pool = flat_inputs(inputs, Some(subset));
                match out.as_ref() {
                    None => {
                        if pool.is_empty() {
                            Ok(())
                        } else {
                            Err(PromiseViolation::MissingOutput)
                        }
                    }
                    Some(r) => {
                        if pool.is_empty() {
                            Err(PromiseViolation::UnexpectedOutput)
                        } else if !pool.iter().any(|(_, i)| *i == r) {
                            Err(PromiseViolation::WrongSource)
                        } else {
                            Ok(())
                        }
                    }
                }
            }
            Promise::PreferUnlessShorter { fallback, preferred } => {
                let pref_pool = flat_inputs(inputs, Some(preferred));
                let fb_set: BTreeSet<Asn> = [*fallback].into();
                let fb_pool = flat_inputs(inputs, Some(&fb_set));
                let pref_min = pref_pool.iter().map(|(_, r)| r.path_len()).min();
                let fb_min = fb_pool.iter().map(|(_, r)| r.path_len()).min();
                match out.as_ref() {
                    None => {
                        if pref_pool.is_empty() && fb_pool.is_empty() {
                            Ok(())
                        } else {
                            Err(PromiseViolation::MissingOutput)
                        }
                    }
                    Some(r) => {
                        let from_pref = pref_pool.iter().any(|(_, i)| *i == r);
                        let from_fb = fb_pool.iter().any(|(_, i)| *i == r);
                        if !from_pref && !from_fb {
                            return Err(PromiseViolation::NotAnInputRoute);
                        }
                        match (pref_min, fb_min) {
                            // Fallback may be used only when strictly
                            // shorter than everything preferred (or when
                            // nothing preferred exists).
                            (Some(pm), _) if from_fb => {
                                if r.path_len() < pm {
                                    Ok(())
                                } else {
                                    Err(PromiseViolation::WrongSource)
                                }
                            }
                            _ if from_pref => Ok(()),
                            _ => Ok(()), // fallback with no preferred routes
                        }
                    }
                }
            }
        }
    }

    fn check_shortest(pool: &[(Asn, &Route)], out: Option<&Route>) -> Result<(), PromiseViolation> {
        let min = pool.iter().map(|(_, r)| r.path_len()).min();
        match (min, out) {
            (None, None) => Ok(()),
            (None, Some(_)) => Err(PromiseViolation::UnexpectedOutput),
            (Some(_), None) => Err(PromiseViolation::MissingOutput),
            (Some(m), Some(r)) => {
                if !pool.iter().any(|(_, i)| *i == r) {
                    return Err(PromiseViolation::NotAnInputRoute);
                }
                if r.path_len() > m {
                    return Err(PromiseViolation::TooLong { got: r.path_len(), bound: m });
                }
                Ok(())
            }
        }
    }

    /// §2.2 static check: does this graph's structure guarantee the
    /// promise to `to`? Conservative (sound, not complete): recognizes
    /// the canonical operator patterns and strictly-stronger ones (a
    /// `min` implements the existential promise, for example).
    pub fn implemented_by(&self, graph: &RouteFlowGraph, to: Asn) -> bool {
        let Some((out_var, _)) = graph.outputs().into_iter().find(|&(_, n)| n == to) else {
            return false;
        };
        let Some(writer) = graph.writer_of(out_var) else {
            return false;
        };
        let all_inputs: BTreeSet<Asn> = graph.inputs().into_iter().map(|(_, n)| n).collect();
        let input_var_of =
            |n: Asn| graph.inputs().into_iter().find(|&(_, asn)| asn == n).map(|(v, _)| v);
        let vars_cover = |vars: &[crate::graph::VarId], set: &BTreeSet<Asn>| {
            let covered: BTreeSet<Asn> = vars
                .iter()
                .filter_map(|v| match graph.var(*v).map(|vv| &vv.kind) {
                    Some(VarKind::Input { neighbor }) => Some(*neighbor),
                    _ => None,
                })
                .collect();
            covered == *set && vars.len() == set.len()
        };
        match self {
            Promise::ShortestOverall => {
                writer.kind == OperatorKind::MinPathLen && vars_cover(&writer.inputs, &all_inputs)
            }
            Promise::ShortestOfSubset { subset } => {
                writer.kind == OperatorKind::MinPathLen && vars_cover(&writer.inputs, subset)
            }
            Promise::WithinHopsOfBest { epsilon } => {
                // min over all inputs is the ε = 0 case, which implies any ε.
                if writer.kind == OperatorKind::MinPathLen
                    && vars_cover(&writer.inputs, &all_inputs)
                {
                    return true;
                }
                // PickOne over a WithinHops{e ≤ ε} over all inputs.
                if writer.kind == OperatorKind::PickOne && writer.inputs.len() == 1 {
                    if let Some(inner) = graph.writer_of(writer.inputs[0]) {
                        if let OperatorKind::WithinHops { epsilon: e } = inner.kind {
                            return e <= *epsilon && vars_cover(&inner.inputs, &all_inputs);
                        }
                    }
                }
                false
            }
            Promise::NoLongerThanOthers => {
                // Sound pattern: our output is the min over all inputs, so
                // no other output (drawn from the same inputs) can be
                // shorter.
                writer.kind == OperatorKind::MinPathLen && vars_cover(&writer.inputs, &all_inputs)
            }
            Promise::Existential { subset } => {
                // Any single-valued operator that emits iff an input
                // exists implies the existential promise.
                let emits_iff_nonempty = matches!(
                    writer.kind,
                    OperatorKind::Existential
                        | OperatorKind::MinPathLen
                        | OperatorKind::MaxLocalPref
                        | OperatorKind::PickOne
                );
                emits_iff_nonempty && vars_cover(&writer.inputs, subset)
            }
            Promise::PreferUnlessShorter { fallback, preferred } => {
                if writer.kind != OperatorKind::ShorterOf || writer.inputs.len() != 2 {
                    return false;
                }
                // First input: the fallback's input variable.
                if input_var_of(*fallback) != Some(writer.inputs[0]) {
                    return false;
                }
                // Second input: min/existential over the preferred set.
                let Some(inner) = graph.writer_of(writer.inputs[1]) else {
                    // Direct wiring to a single preferred input also works.
                    return preferred.len() == 1
                        && input_var_of(preferred.iter().next().copied().unwrap())
                            == Some(writer.inputs[1]);
                };
                matches!(
                    inner.kind,
                    OperatorKind::MinPathLen | OperatorKind::Existential | OperatorKind::PickOne
                ) && vars_cover(&inner.inputs, preferred)
            }
        }
    }

    /// §4 "Minimum access": do the access grants suffice for the
    /// neighbors to collectively verify this promise with the PVR
    /// protocol? Requires: each subset neighbor sees its own input
    /// variable, the receiver sees the output variable, and every
    /// participant can see the deciding operator.
    pub fn verifiable_under(&self, graph: &RouteFlowGraph, policy: &AccessPolicy, to: Asn) -> bool {
        let Some((out_var, _)) = graph.outputs().into_iter().find(|&(_, n)| n == to) else {
            return false;
        };
        let Some(writer) = graph.writer_of(out_var) else {
            return false;
        };
        if !policy.allows(to, VertexRef::Var(out_var)) {
            return false;
        }
        let participants: Vec<Asn> = match self {
            Promise::ShortestOfSubset { subset } | Promise::Existential { subset } => {
                subset.iter().copied().collect()
            }
            Promise::PreferUnlessShorter { fallback, preferred } => {
                preferred.iter().copied().chain([*fallback]).collect()
            }
            _ => graph.inputs().into_iter().map(|(_, n)| n).collect(),
        };
        for n in &participants {
            let Some((var, _)) = graph.inputs().into_iter().find(|&(_, asn)| asn == *n) else {
                return false;
            };
            if !policy.allows(*n, VertexRef::Var(var)) {
                return false;
            }
            if !policy.allows(*n, VertexRef::Op(writer.id)) {
                return false;
            }
        }
        policy.allows(to, VertexRef::Op(writer.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use crate::graph::{figure1_graph, figure2_graph};
    use pvr_bgp::{AsPath, Prefix};

    fn route(path: &[u32]) -> Route {
        let mut r = Route::originate(Prefix::parse("10.0.0.0/8").unwrap());
        r.path = AsPath::from_slice(&path.iter().map(|&a| Asn(a)).collect::<Vec<_>>());
        r
    }

    fn inputs(pairs: &[(u32, &[u32])]) -> BTreeMap<Asn, Vec<Route>> {
        let mut m: BTreeMap<Asn, Vec<Route>> = BTreeMap::new();
        for &(n, path) in pairs {
            m.entry(Asn(n)).or_default().push(route(path));
        }
        m
    }

    fn out_to(to: u32, r: Option<Route>) -> BTreeMap<Asn, Option<Route>> {
        [(Asn(to), r)].into()
    }

    const B: Asn = Asn(200);

    #[test]
    fn shortest_overall_accepts_min() {
        let p = Promise::ShortestOverall;
        let ins = inputs(&[(1, &[1, 9, 9]), (2, &[2, 9])]);
        assert!(p.check(&ins, &out_to(200, Some(route(&[2, 9]))), B).is_ok());
    }

    #[test]
    fn shortest_overall_rejects_longer() {
        let p = Promise::ShortestOverall;
        let ins = inputs(&[(1, &[1, 9, 9]), (2, &[2, 9])]);
        assert_eq!(
            p.check(&ins, &out_to(200, Some(route(&[1, 9, 9]))), B),
            Err(PromiseViolation::TooLong { got: 3, bound: 2 })
        );
    }

    #[test]
    fn shortest_overall_rejects_withheld_and_fabricated() {
        let p = Promise::ShortestOverall;
        let ins = inputs(&[(1, &[1, 9])]);
        assert_eq!(p.check(&ins, &out_to(200, None), B), Err(PromiseViolation::MissingOutput));
        assert_eq!(
            p.check(&ins, &out_to(200, Some(route(&[7]))), B),
            Err(PromiseViolation::NotAnInputRoute)
        );
        let empty = inputs(&[]);
        assert_eq!(
            p.check(&empty, &out_to(200, Some(route(&[1]))), B),
            Err(PromiseViolation::UnexpectedOutput)
        );
        assert!(p.check(&empty, &out_to(200, None), B).is_ok());
    }

    #[test]
    fn shortest_of_subset_ignores_outsiders() {
        let subset: BTreeSet<Asn> = [Asn(1), Asn(2)].into();
        let p = Promise::ShortestOfSubset { subset };
        // AS3 has a shorter route, but it is outside the subset.
        let ins = inputs(&[(1, &[1, 9, 9]), (2, &[2, 9]), (3, &[3])]);
        assert!(p.check(&ins, &out_to(200, Some(route(&[2, 9]))), B).is_ok());
        assert!(p.check(&ins, &out_to(200, Some(route(&[3]))), B).is_err());
    }

    #[test]
    fn within_hops_bounds() {
        let p = Promise::WithinHopsOfBest { epsilon: 1 };
        let ins = inputs(&[(1, &[1, 9]), (2, &[2, 8, 9]), (3, &[3, 7, 8, 9])]);
        assert!(p.check(&ins, &out_to(200, Some(route(&[1, 9]))), B).is_ok());
        assert!(p.check(&ins, &out_to(200, Some(route(&[2, 8, 9]))), B).is_ok());
        assert_eq!(
            p.check(&ins, &out_to(200, Some(route(&[3, 7, 8, 9]))), B),
            Err(PromiseViolation::TooLong { got: 4, bound: 3 })
        );
    }

    #[test]
    fn no_longer_than_others() {
        let p = Promise::NoLongerThanOthers;
        let ins = inputs(&[(1, &[1, 9])]);
        let mut outs = out_to(200, Some(route(&[1, 9])));
        outs.insert(Asn(300), Some(route(&[1, 9])));
        assert!(p.check(&ins, &outs, B).is_ok());
        // Another neighbor gets a shorter route.
        outs.insert(Asn(300), Some(route(&[5])));
        assert!(matches!(
            p.check(&ins, &outs, B),
            Err(PromiseViolation::ShorterElsewhere { other: Asn(300), .. })
        ));
        // We get nothing while they get something.
        let mut outs = out_to(200, None);
        outs.insert(Asn(300), Some(route(&[5])));
        assert!(p.check(&ins, &outs, B).is_err());
    }

    #[test]
    fn existential_both_directions() {
        let subset: BTreeSet<Asn> = [Asn(1), Asn(2)].into();
        let p = Promise::Existential { subset };
        let ins = inputs(&[(1, &[1, 9])]);
        assert!(p.check(&ins, &out_to(200, Some(route(&[1, 9]))), B).is_ok());
        assert_eq!(p.check(&ins, &out_to(200, None), B), Err(PromiseViolation::MissingOutput));
        let empty = inputs(&[(3, &[3])]); // only an outsider
        assert_eq!(
            p.check(&empty, &out_to(200, Some(route(&[3]))), B),
            Err(PromiseViolation::UnexpectedOutput)
        );
        assert!(p.check(&empty, &out_to(200, None), B).is_ok());
        // Route from outside the subset while subset has routes.
        let mixed = inputs(&[(1, &[1, 9]), (3, &[3])]);
        assert_eq!(
            p.check(&mixed, &out_to(200, Some(route(&[3]))), B),
            Err(PromiseViolation::WrongSource)
        );
    }

    #[test]
    fn prefer_unless_shorter_semantics() {
        let p =
            Promise::PreferUnlessShorter { fallback: Asn(1), preferred: [Asn(2), Asn(3)].into() };
        // N1 strictly shorter: exporting N1's route is fine.
        let ins = inputs(&[(1, &[1, 9]), (2, &[2, 8, 9])]);
        assert!(p.check(&ins, &out_to(200, Some(route(&[1, 9]))), B).is_ok());
        // N1 tie: must export the preferred side.
        let ins = inputs(&[(1, &[1, 9]), (2, &[2, 9])]);
        assert_eq!(
            p.check(&ins, &out_to(200, Some(route(&[1, 9]))), B),
            Err(PromiseViolation::WrongSource)
        );
        assert!(p.check(&ins, &out_to(200, Some(route(&[2, 9]))), B).is_ok());
        // Only the fallback has a route: exporting it is fine.
        let ins = inputs(&[(1, &[1, 9])]);
        assert!(p.check(&ins, &out_to(200, Some(route(&[1, 9]))), B).is_ok());
        // Nothing at all: silence is fine, fabrication is not.
        let ins = inputs(&[]);
        assert!(p.check(&ins, &out_to(200, None), B).is_ok());
        assert!(p.check(&ins, &out_to(200, Some(route(&[7]))), B).is_err());
    }

    #[test]
    fn static_check_figure1() {
        let ns = [Asn(1), Asn(2), Asn(3)];
        let (g, _, _, _) = figure1_graph(&ns, B);
        let subset: BTreeSet<Asn> = ns.iter().copied().collect();
        assert!(Promise::ShortestOverall.implemented_by(&g, B));
        assert!(Promise::ShortestOfSubset { subset: subset.clone() }.implemented_by(&g, B));
        // min implies the weaker promises.
        assert!(Promise::Existential { subset: subset.clone() }.implemented_by(&g, B));
        assert!(Promise::WithinHopsOfBest { epsilon: 2 }.implemented_by(&g, B));
        assert!(Promise::NoLongerThanOthers.implemented_by(&g, B));
        // Wrong subset does not check out.
        let wrong: BTreeSet<Asn> = [Asn(1)].into();
        assert!(!Promise::ShortestOfSubset { subset: wrong }.implemented_by(&g, B));
        // Wrong receiver.
        assert!(!Promise::ShortestOverall.implemented_by(&g, Asn(999)));
    }

    #[test]
    fn static_check_figure2() {
        let ns = [Asn(1), Asn(2), Asn(3)];
        let (g, _, _, _, _) = figure2_graph(&ns, B);
        let promise =
            Promise::PreferUnlessShorter { fallback: Asn(1), preferred: [Asn(2), Asn(3)].into() };
        assert!(promise.implemented_by(&g, B));
        // The figure 2 graph does NOT implement shortest-overall (N2's
        // longer route can win a tie).
        assert!(!Promise::ShortestOverall.implemented_by(&g, B));
        // Swapped roles fail.
        let swapped =
            Promise::PreferUnlessShorter { fallback: Asn(2), preferred: [Asn(1), Asn(3)].into() };
        assert!(!swapped.implemented_by(&g, B));
    }

    #[test]
    fn minimum_access_check() {
        let ns = [Asn(1), Asn(2)];
        let (g, inputs_v, out, _) = figure1_graph(&ns, B);
        let everyone: Vec<Asn> = ns.iter().copied().chain([B]).collect();
        let policy = AccessPolicy::paper_example(&g, &everyone);
        let promise = Promise::ShortestOfSubset { subset: ns.iter().copied().collect() };
        assert!(promise.verifiable_under(&g, &policy, B));

        // Strip B's access to the output: no longer verifiable.
        let mut blind = policy.clone();
        blind.grant(B, VertexRef::Var(out), Access::NONE);
        assert!(!promise.verifiable_under(&g, &blind, B));

        // Strip N1's access to its own input: no longer verifiable.
        let mut blind = policy.clone();
        blind.grant(Asn(1), VertexRef::Var(inputs_v[0]), Access::STRUCTURE);
        assert!(!promise.verifiable_under(&g, &blind, B));
    }
}
