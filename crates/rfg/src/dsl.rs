//! A small policy language compiling to route-flow graphs.
//!
//! §4 ("More operators"): "such a system should have language support
//! for compiling a high-level policy description (or router
//! configuration file) into a compact route-flow graph." This module is
//! that compiler for a deliberately small, line-oriented language:
//!
//! ```text
//! # Figure 2 as a policy program
//! input r1 from AS1
//! input r2 from AS2
//! input r3 from AS3
//! let m = min(r2, r3)
//! let v = shorter_of(r1, m)
//! output v to AS200
//! ```
//!
//! Statements:
//! * `input <name> from AS<n>` — an input variable for a neighbor;
//! * `let <name> = <op>(<args>)` — an internal variable;
//! * `output <name> to AS<n>` — re-binds a computed variable as the
//!   output exported to a neighbor (sugar: `output <op>(...) to AS<n>`);
//! * `#` starts a comment.
//!
//! Operators: `min`, `exists`, `max_local_pref`, `union`, `pick_one`,
//! `shorter_of(a, b)`, `within_hops(ε, x…)`, `keep_community(c, x…)`,
//! `drop_community(c, x…)`, `require_as(ASn, x…)`, `avoid_as(ASn, x…)`,
//! `cover(a.b.c.d/len, x…)`. Communities are written `tag:value`.

use crate::graph::{RouteFlowGraph, VarId};
use crate::ops::OperatorKind;
use pvr_bgp::{Asn, Community, Prefix};
use std::collections::BTreeMap;

/// A compilation error with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DslError {
    /// Line the error occurred on.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

/// The result of compiling a policy program.
#[derive(Debug)]
pub struct CompiledPolicy {
    /// The validated graph.
    pub graph: RouteFlowGraph,
    /// Named variables (inputs, lets, outputs).
    pub bindings: BTreeMap<String, VarId>,
}

fn err(line: usize, message: impl Into<String>) -> DslError {
    DslError { line, message: message.into() }
}

fn parse_asn(token: &str, line: usize) -> Result<Asn, DslError> {
    let digits = token
        .strip_prefix("AS")
        .or_else(|| token.strip_prefix("as"))
        .ok_or_else(|| err(line, format!("expected AS<number>, got `{token}`")))?;
    digits.parse::<u32>().map(Asn).map_err(|_| err(line, format!("bad AS number `{token}`")))
}

fn parse_community(token: &str, line: usize) -> Result<Community, DslError> {
    let (hi, lo) = token
        .split_once(':')
        .ok_or_else(|| err(line, format!("expected community tag:value, got `{token}`")))?;
    let hi = hi.parse().map_err(|_| err(line, format!("bad community `{token}`")))?;
    let lo = lo.parse().map_err(|_| err(line, format!("bad community `{token}`")))?;
    Ok(Community(hi, lo))
}

/// Splits `op(arg1, arg2, …)` into (op, args).
fn parse_call(expr: &str, line: usize) -> Result<(String, Vec<String>), DslError> {
    let open =
        expr.find('(').ok_or_else(|| err(line, format!("expected <op>(…), got `{expr}`")))?;
    if !expr.ends_with(')') {
        return Err(err(line, "missing closing parenthesis"));
    }
    let op = expr[..open].trim().to_string();
    let inner = &expr[open + 1..expr.len() - 1];
    let args: Vec<String> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|a| a.trim().to_string()).collect()
    };
    Ok((op, args))
}

struct Compiler {
    graph: RouteFlowGraph,
    bindings: BTreeMap<String, VarId>,
}

impl Compiler {
    fn lookup(&self, name: &str, line: usize) -> Result<VarId, DslError> {
        self.bindings
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown variable `{name}`")))
    }

    fn lookup_all(&self, names: &[String], line: usize) -> Result<Vec<VarId>, DslError> {
        names.iter().map(|n| self.lookup(n, line)).collect()
    }

    /// Compiles `op(args)` writing into `target`.
    fn compile_call(
        &mut self,
        op: &str,
        args: &[String],
        target: VarId,
        line: usize,
    ) -> Result<(), DslError> {
        let need = |n: usize| -> Result<(), DslError> {
            if args.len() < n {
                Err(err(line, format!("`{op}` needs at least {n} argument(s)")))
            } else {
                Ok(())
            }
        };
        let (kind, inputs) = match op {
            "min" => {
                need(1)?;
                (OperatorKind::MinPathLen, self.lookup_all(args, line)?)
            }
            "exists" => {
                need(1)?;
                (OperatorKind::Existential, self.lookup_all(args, line)?)
            }
            "max_local_pref" => {
                need(1)?;
                (OperatorKind::MaxLocalPref, self.lookup_all(args, line)?)
            }
            "union" => {
                need(1)?;
                (OperatorKind::Union, self.lookup_all(args, line)?)
            }
            "pick_one" => {
                need(1)?;
                (OperatorKind::PickOne, self.lookup_all(args, line)?)
            }
            "shorter_of" => {
                if args.len() != 2 {
                    return Err(err(line, "`shorter_of` takes exactly (fallback, preferred)"));
                }
                (OperatorKind::ShorterOf, self.lookup_all(args, line)?)
            }
            "within_hops" => {
                need(2)?;
                let epsilon: usize =
                    args[0].parse().map_err(|_| err(line, format!("bad ε `{}`", args[0])))?;
                (OperatorKind::WithinHops { epsilon }, self.lookup_all(&args[1..], line)?)
            }
            "keep_community" | "drop_community" => {
                need(2)?;
                let community = parse_community(&args[0], line)?;
                (
                    OperatorKind::FilterCommunity {
                        community,
                        keep_if_present: op == "keep_community",
                    },
                    self.lookup_all(&args[1..], line)?,
                )
            }
            "require_as" | "avoid_as" => {
                need(2)?;
                let asn = parse_asn(&args[0], line)?;
                (
                    OperatorKind::FilterAsPresence { asn, keep_if_present: op == "require_as" },
                    self.lookup_all(&args[1..], line)?,
                )
            }
            "cover" => {
                need(2)?;
                let cover = Prefix::parse(&args[0])
                    .ok_or_else(|| err(line, format!("bad prefix `{}`", args[0])))?;
                (OperatorKind::FilterPrefix { cover }, self.lookup_all(&args[1..], line)?)
            }
            other => return Err(err(line, format!("unknown operator `{other}`"))),
        };
        self.graph.add_op(kind, &inputs, target);
        Ok(())
    }
}

/// Compiles a policy program into a validated route-flow graph.
pub fn compile(program: &str) -> Result<CompiledPolicy, DslError> {
    let mut c = Compiler { graph: RouteFlowGraph::new(), bindings: BTreeMap::new() };

    for (idx, raw) in program.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut tokens = text.split_whitespace();
        match tokens.next() {
            Some("input") => {
                // input <name> from AS<n>
                let name = tokens.next().ok_or_else(|| err(line, "input needs a name"))?;
                if tokens.next() != Some("from") {
                    return Err(err(line, "expected `from`"));
                }
                let asn = parse_asn(
                    tokens.next().ok_or_else(|| err(line, "input needs a neighbor"))?,
                    line,
                )?;
                if tokens.next().is_some() {
                    return Err(err(line, "trailing tokens after input"));
                }
                if c.bindings.contains_key(name) {
                    return Err(err(line, format!("`{name}` already defined")));
                }
                let v = c.graph.add_input(name, asn);
                c.bindings.insert(name.to_string(), v);
            }
            Some("let") => {
                // let <name> = <op>(args)
                let name = tokens.next().ok_or_else(|| err(line, "let needs a name"))?;
                if tokens.next() != Some("=") {
                    return Err(err(line, "expected `=`"));
                }
                let expr: String = tokens.collect::<Vec<_>>().join(" ");
                if c.bindings.contains_key(name) {
                    return Err(err(line, format!("`{name}` already defined")));
                }
                let target = c.graph.add_internal(name);
                c.bindings.insert(name.to_string(), target);
                let (op, args) = parse_call(&expr, line)?;
                c.compile_call(&op, &args, target, line)?;
            }
            Some("output") => {
                // output <name> to AS<n>   |   output <op>(args) to AS<n>
                let rest: Vec<&str> = tokens.collect();
                let to_pos = rest
                    .iter()
                    .position(|&t| t == "to")
                    .ok_or_else(|| err(line, "expected `to`"))?;
                let expr = rest[..to_pos].join(" ");
                let target_asn = parse_asn(
                    rest.get(to_pos + 1).ok_or_else(|| err(line, "output needs a neighbor"))?,
                    line,
                )?;
                let out_name = format!("out→{target_asn}");
                let out_var = c.graph.add_output(&out_name, target_asn);
                if expr.contains('(') {
                    let (op, args) = parse_call(&expr, line)?;
                    c.compile_call(&op, &args, out_var, line)?;
                } else {
                    // Re-export a named variable through a PickOne so the
                    // output has a writer.
                    let src = c.lookup(expr.trim(), line)?;
                    c.graph.add_op(OperatorKind::PickOne, &[src], out_var);
                }
                c.bindings.insert(out_name, out_var);
            }
            Some(other) => {
                return Err(err(line, format!("unknown statement `{other}`")));
            }
            None => unreachable!("blank lines filtered"),
        }
    }

    c.graph.validate().map_err(|e| err(0, format!("graph validation failed: {e}")))?;
    Ok(CompiledPolicy { graph: c.graph, bindings: c.bindings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promise::Promise;
    use pvr_bgp::{AsPath, Route};
    use std::collections::{BTreeMap as Map, BTreeSet};

    fn route(asns: &[u32]) -> Route {
        let mut r = Route::originate(Prefix::parse("10.0.0.0/8").unwrap());
        r.path = AsPath::from_slice(&asns.iter().map(|&a| Asn(a)).collect::<Vec<_>>());
        r
    }

    #[test]
    fn figure1_program_compiles_and_runs() {
        let policy = compile(
            "# promise 2: shortest of N1..N3\n\
             input r1 from AS1\n\
             input r2 from AS2\n\
             input r3 from AS3\n\
             output min(r1, r2, r3) to AS200\n",
        )
        .unwrap();
        let subset: BTreeSet<Asn> = [Asn(1), Asn(2), Asn(3)].into();
        assert!(Promise::ShortestOfSubset { subset }.implemented_by(&policy.graph, Asn(200)));

        let mut inputs = Map::new();
        inputs.insert(Asn(1), vec![route(&[1, 9, 9])]);
        inputs.insert(Asn(2), vec![route(&[2, 9])]);
        let eval = policy.graph.evaluate(&inputs).unwrap();
        let (out_var, _) = policy.graph.outputs()[0];
        assert_eq!(eval.single(out_var).unwrap().path_len(), 2);
    }

    #[test]
    fn figure2_program_matches_builtin_graph() {
        let policy = compile(
            "input r1 from AS1\n\
             input r2 from AS2\n\
             input r3 from AS3\n\
             let m = min(r2, r3)\n\
             output shorter_of(r1, m) to AS200\n",
        )
        .unwrap();
        let promise =
            Promise::PreferUnlessShorter { fallback: Asn(1), preferred: [Asn(2), Asn(3)].into() };
        assert!(promise.implemented_by(&policy.graph, Asn(200)));
    }

    #[test]
    fn filters_and_epsilon_compile() {
        let policy = compile(
            "input r1 from AS1\n\
             input r2 from AS2\n\
             let merged = union(r1, r2)\n\
             let eu = keep_community(65000:1, merged)\n\
             let no3 = avoid_as(AS3, eu)\n\
             let near = within_hops(2, no3)\n\
             let local = cover(10.0.0.0/8, near)\n\
             output pick_one(local) to AS200\n",
        )
        .unwrap();
        // Evaluate: only the EU-tagged, AS3-free, /8-covered route
        // survives.
        let eu = Community(65000, 1);
        let mut inputs = Map::new();
        inputs.insert(Asn(1), vec![route(&[1, 5]).with_community(eu)]);
        inputs.insert(Asn(2), vec![route(&[2, 3])]); // via AS3, untagged
        let eval = policy.graph.evaluate(&inputs).unwrap();
        let (out_var, _) = policy.graph.outputs()[0];
        assert_eq!(eval.single(out_var).unwrap().path.asns()[0], Asn(1));
    }

    #[test]
    fn named_reexport_works() {
        let policy = compile(
            "input r1 from AS1\n\
             let best = min(r1)\n\
             output best to AS200\n",
        )
        .unwrap();
        assert_eq!(policy.graph.outputs().len(), 1);
        let mut inputs = Map::new();
        inputs.insert(Asn(1), vec![route(&[1])]);
        let eval = policy.graph.evaluate(&inputs).unwrap();
        let (out_var, _) = policy.graph.outputs()[0];
        assert!(eval.single(out_var).is_some());
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (program, expect_line, needle) in [
            ("input r1 from banana", 1, "expected AS"),
            ("let x = ", 1, "expected <op>"),
            ("input r1 from AS1\nlet x = warp(r1)", 2, "unknown operator"),
            ("let x = min(ghost)", 1, "unknown variable"),
            ("bogus statement", 1, "unknown statement"),
            ("input r1 from AS1\ninput r1 from AS2", 2, "already defined"),
            ("input r1 from AS1\nlet x = shorter_of(r1)", 2, "exactly"),
            ("input r1 from AS1\nlet x = keep_community(banana, r1)", 2, "community"),
            ("input r1 from AS1\nlet x = cover(999.0.0.0/8, r1)", 2, "bad prefix"),
            ("input r1 from AS1\nlet x = within_hops(abc, r1)", 2, "bad ε"),
            ("output ghost to AS200", 1, "unknown variable"),
        ] {
            let e = compile(program).unwrap_err();
            assert_eq!(e.line, expect_line, "{program:?} → {e}");
            assert!(e.message.contains(needle), "{program:?} → {e}");
        }
    }

    #[test]
    fn uncomputed_output_fails_validation() {
        // `output` always wires a writer, so this failure mode comes
        // from cycles instead.
        let e = compile(
            "let a = union(b)\n\
             let b = union(a)\n",
        );
        // b referenced before defined → unknown variable at line 1.
        assert!(e.is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let policy = compile(
            "\n# a comment\n\n\
             input r1 from AS1   # trailing comment\n\
             output exists(r1) to AS200\n\n",
        )
        .unwrap();
        assert_eq!(policy.graph.inputs().len(), 1);
    }
}
