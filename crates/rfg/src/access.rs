//! Access-control policies over route-flow graphs.
//!
//! §2.2: "Visibility of operators and variables is governed by an access
//! control policy … a function α : N × V → {TRUE, FALSE} expresses
//! which networks are allowed to see which parts of the graph. If v is a
//! variable vertex, α(n, v) = TRUE means that network n is allowed to
//! learn the current value of v; if v is an operator vertex, n is
//! allowed to learn which function v computes."
//!
//! Following §3.7, we track *structure* visibility (the vertex's edges)
//! separately from *content* visibility (the value / operator type), so
//! "a neighbor may navigate parts of the graph it is not allowed to
//! see".

use crate::graph::{RouteFlowGraph, VarKind, VertexRef};
use pvr_bgp::Asn;
use std::collections::BTreeMap;

/// Visibility grant for one (network, vertex) pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Access {
    /// May learn the value (variable) or function (operator).
    pub content: bool,
    /// May learn the vertex's incoming/outgoing edges.
    pub structure: bool,
}

impl Access {
    /// No visibility.
    pub const NONE: Access = Access { content: false, structure: false };
    /// Structure only (can navigate past the vertex).
    pub const STRUCTURE: Access = Access { content: false, structure: true };
    /// Full visibility.
    pub const FULL: Access = Access { content: true, structure: true };
}

/// The α function, default-deny.
#[derive(Clone, Debug, Default)]
pub struct AccessPolicy {
    grants: BTreeMap<(Asn, VertexRef), Access>,
}

impl AccessPolicy {
    /// A default-deny policy.
    pub fn new() -> AccessPolicy {
        AccessPolicy::default()
    }

    /// Grants `network` the given access to `vertex`.
    pub fn grant(&mut self, network: Asn, vertex: VertexRef, access: Access) -> &mut Self {
        self.grants.insert((network, vertex), access);
        self
    }

    /// The effective access of `network` to `vertex`.
    pub fn access(&self, network: Asn, vertex: VertexRef) -> Access {
        self.grants.get(&(network, vertex)).copied().unwrap_or(Access::NONE)
    }

    /// α in the paper's boolean form (content visibility).
    pub fn allows(&self, network: Asn, vertex: VertexRef) -> bool {
        self.access(network, vertex).content
    }

    /// Builds the paper's §3 example policy for a graph:
    /// "α(N_i, r_i) = α(B, r_0) = TRUE, α(n, min) = TRUE for all
    /// networks n, and α(n, v) = FALSE otherwise."
    ///
    /// Concretely: every input's advertising neighbor sees its own input
    /// variable; every output's receiver sees that output; every
    /// operator's *type and wiring* are visible to all of `networks`
    /// (so each can statically check the promise); everything else is
    /// hidden.
    pub fn paper_example(graph: &RouteFlowGraph, networks: &[Asn]) -> AccessPolicy {
        let mut policy = AccessPolicy::new();
        for v in graph.vars() {
            match v.kind {
                VarKind::Input { neighbor } => {
                    policy.grant(neighbor, VertexRef::Var(v.id), Access::FULL);
                    // Everyone may navigate *past* inputs (structure only):
                    // they learn such a vertex exists on the graph, not
                    // its value — matching Figure 1 where the set of
                    // neighbors is public knowledge.
                    for &n in networks {
                        if n != neighbor {
                            policy.grant(n, VertexRef::Var(v.id), Access::STRUCTURE);
                        }
                    }
                }
                VarKind::Output { neighbor } => {
                    policy.grant(neighbor, VertexRef::Var(v.id), Access::FULL);
                    for &n in networks {
                        if n != neighbor {
                            policy.grant(n, VertexRef::Var(v.id), Access::STRUCTURE);
                        }
                    }
                }
                VarKind::Internal => {
                    for &n in networks {
                        policy.grant(n, VertexRef::Var(v.id), Access::STRUCTURE);
                    }
                }
            }
        }
        for op in graph.ops() {
            for &n in networks {
                policy.grant(n, VertexRef::Op(op.id), Access::FULL);
            }
        }
        policy
    }

    /// §1's footnote on strength: a policy is *weaker* than another if it
    /// reveals at least as much ("If a system can enforce some access
    /// control policy α, it can trivially enforce any policy that is
    /// strictly weaker"). True if `self` grants everything `other` does.
    pub fn at_least_as_permissive(&self, other: &AccessPolicy) -> bool {
        other.grants.iter().all(|(&(n, v), &a)| {
            let mine = self.access(n, v);
            (!a.content || mine.content) && (!a.structure || mine.structure)
        })
    }

    /// Iterates over all explicit grants.
    pub fn grants(&self) -> impl Iterator<Item = (Asn, VertexRef, Access)> + '_ {
        self.grants.iter().map(|(&(n, v), &a)| (n, v, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::figure1_graph;

    #[test]
    fn default_deny() {
        let p = AccessPolicy::new();
        assert_eq!(p.access(Asn(1), VertexRef::Var(crate::graph::VarId(0))), Access::NONE);
        assert!(!p.allows(Asn(1), VertexRef::Var(crate::graph::VarId(0))));
    }

    #[test]
    fn grant_and_query() {
        let mut p = AccessPolicy::new();
        let v = VertexRef::Var(crate::graph::VarId(3));
        p.grant(Asn(1), v, Access::STRUCTURE);
        assert!(!p.allows(Asn(1), v));
        assert!(p.access(Asn(1), v).structure);
        p.grant(Asn(1), v, Access::FULL);
        assert!(p.allows(Asn(1), v));
    }

    #[test]
    fn paper_example_matches_section3() {
        let ns = [Asn(1), Asn(2), Asn(3)];
        let b = Asn(200);
        let (g, inputs, out, min) = figure1_graph(&ns, b);
        let everyone: Vec<Asn> = ns.iter().copied().chain([b]).collect();
        let p = AccessPolicy::paper_example(&g, &everyone);

        // α(N_i, r_i) = TRUE.
        for (i, &n) in ns.iter().enumerate() {
            assert!(p.allows(n, VertexRef::Var(inputs[i])), "N{} sees r{}", i + 1, i + 1);
        }
        // α(B, r_o) = TRUE.
        assert!(p.allows(b, VertexRef::Var(out)));
        // α(n, min) = TRUE for all n.
        for &n in &everyone {
            assert!(p.allows(n, VertexRef::Op(min)));
        }
        // α(n, v) = FALSE otherwise: N1 must not see N2's input or the
        // output, and B must not see any input.
        assert!(!p.allows(ns[0], VertexRef::Var(inputs[1])));
        assert!(!p.allows(ns[0], VertexRef::Var(out)));
        for i in &inputs {
            assert!(!p.allows(b, VertexRef::Var(*i)));
        }
        // But everyone can navigate (structure).
        assert!(p.access(b, VertexRef::Var(inputs[0])).structure);
    }

    #[test]
    fn permissiveness_ordering() {
        let ns = [Asn(1), Asn(2)];
        let (g, inputs, _, _) = figure1_graph(&ns, Asn(200));
        let everyone = [Asn(1), Asn(2), Asn(200)];
        let base = AccessPolicy::paper_example(&g, &everyone);
        let mut wider = base.clone();
        wider.grant(Asn(200), VertexRef::Var(inputs[0]), Access::FULL);
        assert!(wider.at_least_as_permissive(&base));
        assert!(!base.at_least_as_permissive(&wider));
        assert!(base.at_least_as_permissive(&base));
    }

    #[test]
    fn grants_iterator() {
        let ns = [Asn(1)];
        let (g, _, _, _) = figure1_graph(&ns, Asn(200));
        let p = AccessPolicy::paper_example(&g, &[Asn(1), Asn(200)]);
        assert!(p.grants().count() > 0);
    }
}
