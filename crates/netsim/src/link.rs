//! Directed link configuration: latency, jitter, loss, and partitions.
//!
//! PVR's threat model includes arbitrary message interleavings, so the
//! simulator must be able to vary delivery order (jitter) and drop
//! messages. Faults here are *network* faults; *protocol-level*
//! misbehavior (equivocation, lying about bits) is implemented by
//! Byzantine agents in `pvr-core`, not by the links.

use crate::time::SimDuration;

/// Configuration of one directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Base one-way latency.
    pub latency: SimDuration,
    /// Maximum additional random latency (uniform in `[0, jitter]`).
    pub jitter: SimDuration,
    /// Probability that a message is silently dropped.
    pub drop_prob: f64,
    /// Administratively down (partition): all messages dropped.
    pub down: bool,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: SimDuration::from_millis(10),
            jitter: SimDuration::ZERO,
            drop_prob: 0.0,
            down: false,
        }
    }
}

impl LinkConfig {
    /// A perfect link with the given latency.
    pub fn with_latency(latency: SimDuration) -> LinkConfig {
        LinkConfig { latency, ..Default::default() }
    }

    /// Adds uniform jitter.
    pub fn jittered(mut self, jitter: SimDuration) -> LinkConfig {
        self.jitter = jitter;
        self
    }

    /// Adds random loss.
    pub fn lossy(mut self, drop_prob: f64) -> LinkConfig {
        assert!((0.0..=1.0).contains(&drop_prob), "probability out of range");
        self.drop_prob = drop_prob;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let l = LinkConfig::with_latency(SimDuration::from_millis(5))
            .jittered(SimDuration::from_micros(100))
            .lossy(0.25);
        assert_eq!(l.latency, SimDuration::from_millis(5));
        assert_eq!(l.jitter, SimDuration::from_micros(100));
        assert!((l.drop_prob - 0.25).abs() < 1e-12);
        assert!(!l.down);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_rejected() {
        let _ = LinkConfig::default().lossy(1.5);
    }

    #[test]
    fn default_is_clean() {
        let l = LinkConfig::default();
        assert_eq!(l.drop_prob, 0.0);
        assert!(!l.down);
    }
}
