//! Deterministic fault injection: scheduled link, session, and node
//! faults applied at exact sim times.
//!
//! A [`FaultPlan`] is a list of `(time, fault)` pairs installed into
//! either engine before (or during) a run. Faults fire as their own sim
//! instants, *before* any queued event carrying the same timestamp, so
//! a fault schedule perturbs a run at reproducible points: the serial
//! and sharded engines apply the same plan in the same order and stay
//! byte-identical at any shard count.
//!
//! Faults are *network*-level (the same layer as [`LinkConfig`]
//! partitions): topology-aware semantics — flushing RIBs, flooding
//! withdraws, re-announcing on recovery — live in the agents, reached
//! through the [`Agent::on_session`] callback that link and session
//! faults trigger on both endpoints.
//!
//! [`LinkConfig`]: crate::LinkConfig
//! [`Agent::on_session`]: crate::Agent::on_session

use crate::sim::NodeId;
use crate::time::{SimDuration, SimTime};

/// One schedulable fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Both directions of the `a`–`b` link go administratively down.
    /// Each endpoint receives `on_session(peer, up: false)`.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Both directions of the `a`–`b` link come back up. Each endpoint
    /// receives `on_session(peer, up: true)`.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Ramps loss and jitter on both directions of the `a`–`b` link
    /// without tearing the session down (brown-out rather than
    /// black-out). Latency is preserved.
    LinkDegrade {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// New drop probability for both directions.
        drop_prob: f64,
        /// New uniform jitter bound for both directions.
        jitter: SimDuration,
    },
    /// Tears the `a`–`b` session down and immediately back up without
    /// touching link state: both endpoints see `on_session(false)` then
    /// `on_session(true)` at the same instant.
    SessionReset {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Pauses a node: every message to or from it is dropped at the
    /// sender until the matching [`Fault::NodeResume`]. In-flight
    /// deliveries still arrive and timers still fire — a pause models a
    /// stalled control plane, not a powered-off box.
    NodePause {
        /// The paused node.
        node: NodeId,
    },
    /// Resumes a paused node.
    NodeResume {
        /// The resumed node.
        node: NodeId,
    },
}

/// A schedule of seeded fault events, installed into an engine with
/// `set_fault_plan`. Events with equal times apply in insertion order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `fault` at `time`.
    pub fn push(&mut self, time: SimTime, fault: Fault) {
        self.events.push((time, fault));
    }

    /// Builder-style [`push`](FaultPlan::push).
    pub fn at(mut self, time: SimTime, fault: Fault) -> FaultPlan {
        self.push(time, fault);
        self
    }

    /// Schedules `count` down/up flaps of the `a`–`b` link: down at
    /// `start + k·period`, up again `down_for` later.
    pub fn flap_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        start: SimTime,
        down_for: SimDuration,
        period: SimDuration,
        count: usize,
    ) {
        assert!(down_for < period, "flap must come back up before the next cycle");
        for k in 0..count as u64 {
            let down_at = start + SimDuration::from_micros(period.as_micros() * k);
            self.push(down_at, Fault::LinkDown { a, b });
            self.push(down_at + down_for, Fault::LinkUp { a, b });
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events in insertion order.
    pub fn events(&self) -> &[(SimTime, Fault)] {
        &self.events
    }

    pub(crate) fn into_injector(self) -> FaultInjector {
        let mut schedule = self.events;
        // Stable by time: equal-time faults keep insertion order, the
        // same tie-break rule as the event queue.
        schedule.sort_by_key(|&(t, _)| t);
        FaultInjector { schedule, cursor: 0 }
    }
}

/// Engine-internal cursor over a sorted fault schedule.
pub(crate) struct FaultInjector {
    schedule: Vec<(SimTime, Fault)>,
    cursor: usize,
}

impl FaultInjector {
    /// Earliest unapplied fault time (raw schedule time; engines clamp
    /// to `now` so late-installed plans fire immediately, never in the
    /// past).
    pub(crate) fn next_time(&self) -> Option<SimTime> {
        self.schedule.get(self.cursor).map(|&(t, _)| t)
    }

    /// Pops the next fault if it is due at or before `now`.
    pub(crate) fn pop_due(&mut self, now: SimTime) -> Option<Fault> {
        let &(t, fault) = self.schedule.get(self.cursor)?;
        if t > now {
            return None;
        }
        self.cursor += 1;
        Some(fault)
    }

    /// The unapplied tail of the schedule (checkpoint codecs persist
    /// exactly this, so a restored run need not re-install the plan).
    pub(crate) fn remaining(&self) -> &[(SimTime, Fault)] {
        &self.schedule[self.cursor..]
    }

    /// Rebuilds an injector from a checkpointed remaining schedule
    /// (already time-sorted by construction).
    pub(crate) fn from_schedule(schedule: Vec<(SimTime, Fault)>) -> FaultInjector {
        FaultInjector { schedule, cursor: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_stably_by_time() {
        let plan = FaultPlan::new()
            .at(SimTime(20), Fault::LinkUp { a: 0, b: 1 })
            .at(SimTime(10), Fault::LinkDown { a: 0, b: 1 })
            .at(SimTime(10), Fault::NodePause { node: 2 });
        let mut inj = plan.into_injector();
        assert_eq!(inj.next_time(), Some(SimTime(10)));
        assert_eq!(inj.pop_due(SimTime(10)), Some(Fault::LinkDown { a: 0, b: 1 }));
        assert_eq!(inj.pop_due(SimTime(10)), Some(Fault::NodePause { node: 2 }));
        assert_eq!(inj.pop_due(SimTime(10)), None, "future faults stay queued");
        assert_eq!(inj.pop_due(SimTime(20)), Some(Fault::LinkUp { a: 0, b: 1 }));
        assert_eq!(inj.next_time(), None, "schedule exhausted");
    }

    #[test]
    fn flap_link_expands_to_down_up_pairs() {
        let mut plan = FaultPlan::new();
        plan.flap_link(
            3,
            4,
            SimTime(1_000),
            SimDuration::from_micros(100),
            SimDuration::from_micros(500),
            2,
        );
        assert_eq!(
            plan.events(),
            &[
                (SimTime(1_000), Fault::LinkDown { a: 3, b: 4 }),
                (SimTime(1_100), Fault::LinkUp { a: 3, b: 4 }),
                (SimTime(1_500), Fault::LinkDown { a: 3, b: 4 }),
                (SimTime(1_600), Fault::LinkUp { a: 3, b: 4 }),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "back up before")]
    fn flap_longer_than_period_rejected() {
        let mut plan = FaultPlan::new();
        plan.flap_link(
            0,
            1,
            SimTime(0),
            SimDuration::from_micros(500),
            SimDuration::from_micros(500),
            1,
        );
    }
}
