//! # pvr-netsim — deterministic discrete-event network simulator
//!
//! The substrate PVR runs on in this reproduction. The paper's protocol
//! is control-plane only, so a message-passing simulator preserves every
//! behaviour the evaluation depends on: message ordering, adversarial
//! interleavings, loss, partitions, and per-node receive views (the raw
//! material for the §2.3 Confidentiality audit).
//!
//! Design notes (following the smoltcp philosophy from the project
//! guides): synchronous poll-driven core, no hidden threads, no
//! wall-clock reads, simple data structures. Determinism is a feature
//! under test: identical seeds reproduce identical traces, bit for bit.

pub mod fault;
pub mod link;
pub mod shard;
pub mod sim;
pub mod state;
pub mod time;

pub use fault::{Fault, FaultPlan};
pub use link::LinkConfig;
pub use shard::ShardedSimulator;
pub use sim::{
    Agent, BarrierHook, Context, Delivery, NodeId, Payload, RunLimits, SimStats, Simulator,
    StopReason,
};
pub use state::StateError;
pub use time::{SimDuration, SimTime};
