//! Sharded discrete-event engine: parallel dispatch, serial order.
//!
//! [`ShardedSimulator`] partitions the node set across shards, each with
//! its own time-bucketed calendar (the same `EventQueue` the serial
//! engine uses), and runs the
//! simulation in lockstep *time windows*: all events scheduled for the
//! earliest pending timestamp are dispatched in parallel (one worker per
//! shard under `std::thread::scope`), then a serial exchange phase
//! routes every action the agents produced — including boundary-crossing
//! messages — back into the calendars in exactly the order the serial
//! [`Simulator`](crate::Simulator) would have produced.
//!
//! # Why the output is byte-identical to the serial engine
//!
//! The serial engine's behaviour is a fold over events ordered by
//! `(time, sequence-number)`, where sequence numbers are assigned in
//! scheduling order and the link DRBG is consumed on the send path in
//! that same order. The sharded engine reproduces that fold exactly:
//!
//! * **Within a window** all events share one timestamp and target
//!   disjoint agents (each node lives on exactly one shard), so their
//!   dispatch order across shards cannot affect agent state. Per shard,
//!   events are drained in FIFO (= global sequence) order.
//! * **Actions** are buffered during dispatch tagged with
//!   `(cause-sequence, action-index)`. The exchange phase merges all
//!   shard outboxes sorted by that key — which is precisely the order
//!   the serial engine applies actions in (it finishes each event's
//!   actions before popping the next event at the same time).
//! * **Randomness**: link jitter and loss draw from one coordinator
//!   DRBG seeded identically to the serial engine's (label `"netsim"`),
//!   and the exchange phase consumes it in the serial order above — so
//!   even lossy, jittered runs are bit-reproducible across shard
//!   counts. Per-shard DRBGs (labels `"netsim-shard-{k}"`) back
//!   [`Context::rng`] during parallel dispatch; agents that draw from
//!   their context rng (none of the BGP routers do) trade cross-engine
//!   identity for cross-run determinism at a fixed shard count.
//! * **Same-time cascades** (zero-latency sends landing in the current
//!   window) are appended to the window's buckets with fresh sequence
//!   numbers and drained by re-running the window until it empties,
//!   matching the serial engine's FIFO append semantics.
//!
//! The only observable divergence is [`RunLimits::max_events`], which
//! the sharded engine checks at window granularity rather than per
//! event (convergence workloads run with deadlines or no limits).

use crate::fault::{Fault, FaultInjector, FaultPlan};
use crate::link::LinkConfig;
use crate::sim::{Action, Agent, Context, Delivery, EventKind, EventQueue, NodeId, Payload};
use crate::sim::{InertAgent, RunLimits, SimStats, StopReason};
use crate::time::SimTime;
use pvr_crypto::drbg::HmacDrbg;
use std::collections::HashMap;

/// One buffered agent action awaiting the exchange phase:
/// `(cause-sequence, action-index, acting node, action)`.
type OutboxEntry<P> = (u64, u32, NodeId, Action<P>);

/// A node partition with its own calendar, DRBG, and counters.
struct Shard<P: Payload> {
    nodes: Vec<Box<dyn Agent<P> + Send>>,
    /// Global node id per local index (ascending).
    node_ids: Vec<NodeId>,
    /// Global node id → local index.
    local_of: HashMap<NodeId, usize>,
    queue: EventQueue<(u64, EventKind<P>)>,
    /// Shard-local DRBG backing `Context::rng` during parallel dispatch.
    rng: HmacDrbg,
    /// Actions produced this window, sorted by construction.
    outbox: Vec<OutboxEntry<P>>,
    /// Traced deliveries tagged with their global sequence number.
    trace: Vec<(u64, Delivery<P>)>,
    events: u64,
    delivered: u64,
    timers_fired: u64,
    action_scratch: Vec<Action<P>>,
}

impl<P: Payload> Shard<P> {
    fn new(seed: u64, index: usize) -> Shard<P> {
        Shard {
            nodes: Vec::new(),
            node_ids: Vec::new(),
            local_of: HashMap::new(),
            queue: EventQueue::new(),
            rng: HmacDrbg::from_u64_labeled(seed, &format!("netsim-shard-{index}")),
            outbox: Vec::new(),
            trace: Vec::new(),
            events: 0,
            delivered: 0,
            timers_fired: 0,
            action_scratch: Vec::new(),
        }
    }

    /// Runs one agent callback, buffering its actions into the outbox
    /// keyed by `cause` (the triggering event's global sequence number,
    /// or the node id during start-up).
    fn dispatch_local<F>(&mut self, local: usize, cause: u64, now: SimTime, f: F)
    where
        F: FnOnce(&mut dyn Agent<P>, &mut Context<P>),
    {
        let Shard { nodes, node_ids, rng, outbox, action_scratch, .. } = self;
        let id = node_ids[local];
        let mut ctx = Context::renew(now, id, rng, std::mem::take(action_scratch));
        f(nodes[local].as_mut(), &mut ctx);
        let mut actions = ctx.into_actions();
        for (idx, action) in actions.drain(..).enumerate() {
            outbox.push((cause, idx as u32, id, action));
        }
        *action_scratch = actions;
    }

    /// Dispatches `on_start` for every local node (ascending global id).
    fn run_starts(&mut self, now: SimTime) {
        for local in 0..self.nodes.len() {
            let cause = self.node_ids[local] as u64;
            self.dispatch_local(local, cause, now, |agent, ctx| agent.on_start(ctx));
        }
    }

    /// Drains and dispatches every event scheduled exactly at `time`.
    fn run_bucket(&mut self, time: SimTime, trace: bool) {
        while let Some((seq, kind)) = self.queue.pop_at(time) {
            self.events += 1;
            match kind {
                EventKind::Deliver { src, dst, msg } => {
                    self.delivered += 1;
                    if trace {
                        self.trace.push((seq, Delivery { time, src, dst, msg: msg.clone() }));
                    }
                    let local = self.local_of[&dst];
                    self.dispatch_local(local, seq, time, |agent, ctx| {
                        agent.on_message(ctx, src, msg)
                    });
                }
                EventKind::Timer { node, timer } => {
                    self.timers_fired += 1;
                    let local = self.local_of[&node];
                    self.dispatch_local(local, seq, time, |agent, ctx| agent.on_timer(ctx, timer));
                }
            }
        }
    }
}

/// Drop-in parallel counterpart of [`Simulator`](crate::Simulator):
/// same seed ⇒ same stats, same trace, same final agent state, at any
/// shard count. See the module docs for the ordering argument.
pub struct ShardedSimulator<P: Payload + Send> {
    shards: Vec<Shard<P>>,
    /// Shard index per global node id.
    node_shard: Vec<u32>,
    links: HashMap<(NodeId, NodeId), LinkConfig>,
    default_link: LinkConfig,
    now: SimTime,
    /// Coordinator DRBG — seeded exactly like the serial engine's and
    /// consumed only in the serial exchange phase.
    rng: HmacDrbg,
    /// Next global event sequence number.
    next_seq: u64,
    stats: SimStats,
    trace_enabled: bool,
    /// Optional convergence-timeline recorder, maintained by the
    /// coordinator only (shard workers never touch it) so the recorded
    /// windows are byte-identical to the serial engine's.
    timeline: Option<pvr_obs::TimelineRecorder>,
    started: bool,
    /// Minimum events in a window before worker threads are spawned;
    /// smaller windows dispatch inline (identical output either way).
    spawn_threshold: usize,
    /// Recycled merge buffer for the exchange phase.
    merged: Vec<OutboxEntry<P>>,
    /// Scheduled fault events, if a plan was installed.
    faults: Option<FaultInjector>,
    /// Per-node pause flags (see [`Fault::NodePause`]).
    paused: Vec<bool>,
    /// Optional drained-instant callback (see
    /// [`BarrierHook`](crate::sim::BarrierHook)), fired by the
    /// coordinator only — at the same instants, in the same order
    /// relative to the queue-depth sample, as the serial engine.
    barrier: Option<Box<dyn crate::sim::BarrierHook>>,
}

impl<P: Payload + Send> ShardedSimulator<P> {
    /// Creates a sharded simulator. `shards` is clamped to at least 1;
    /// all randomness derives from `seed` exactly as in the serial
    /// engine, so outputs are comparable across engines and shard
    /// counts.
    pub fn new(seed: u64, shards: usize) -> ShardedSimulator<P> {
        let shards = shards.max(1);
        ShardedSimulator {
            shards: (0..shards).map(|k| Shard::new(seed, k)).collect(),
            node_shard: Vec::new(),
            links: HashMap::new(),
            default_link: LinkConfig::default(),
            now: SimTime::ZERO,
            rng: HmacDrbg::from_u64_labeled(seed, "netsim"),
            next_seq: 0,
            stats: SimStats::default(),
            trace_enabled: false,
            timeline: None,
            started: false,
            spawn_threshold: 16,
            merged: Vec::new(),
            faults: None,
            paused: Vec::new(),
            barrier: None,
        }
    }

    /// Installs a [`BarrierHook`](crate::sim::BarrierHook), replacing
    /// any previous one — the sharded counterpart of
    /// [`Simulator::set_barrier_hook`](crate::Simulator::set_barrier_hook).
    /// Returned timers receive fresh global sequence numbers in the
    /// returned order, so their firing order matches the serial engine.
    pub fn set_barrier_hook(&mut self, hook: Box<dyn crate::sim::BarrierHook>) {
        self.barrier = Some(hook);
    }

    /// Adds a node on an explicit shard, returning its global id.
    pub fn add_node_to_shard(&mut self, agent: Box<dyn Agent<P> + Send>, shard: usize) -> NodeId {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        let id = self.node_shard.len();
        self.node_shard.push(shard as u32);
        self.paused.push(false);
        let s = &mut self.shards[shard];
        let local = s.nodes.len();
        s.nodes.push(agent);
        s.node_ids.push(id);
        s.local_of.insert(id, local);
        id
    }

    /// Adds a node round-robin across shards, returning its global id.
    pub fn add_node(&mut self, agent: Box<dyn Agent<P> + Send>) -> NodeId {
        let shard = self.node_shard.len() % self.shards.len();
        self.add_node_to_shard(agent, shard)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_shard.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a node lives on.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.node_shard[node] as usize
    }

    /// Sets the link configuration used when no per-pair config exists.
    pub fn set_default_link(&mut self, cfg: LinkConfig) {
        self.default_link = cfg;
    }

    /// Configures the directed link `src → dst`.
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        self.links.insert((src, dst), cfg);
    }

    /// Configures both directions between `a` and `b`.
    pub fn set_link_bidi(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        self.set_link(a, b, cfg);
        self.set_link(b, a, cfg);
    }

    /// Takes a directed link down (partition).
    pub fn set_link_down(&mut self, src: NodeId, dst: NodeId, down: bool) {
        let mut cfg = self.link_config(src, dst);
        cfg.down = down;
        self.links.insert((src, dst), cfg);
    }

    /// Installs a fault plan — the sharded counterpart of
    /// [`Simulator::set_fault_plan`](crate::Simulator::set_fault_plan).
    /// Faults are applied by the coordinator between windows, in the
    /// same order and with the same DRBG consumption as the serial
    /// engine, so fault-injected runs stay byte-identical at any shard
    /// count.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan.into_injector());
    }

    fn link_config(&self, src: NodeId, dst: NodeId) -> LinkConfig {
        self.links.get(&(src, dst)).copied().unwrap_or(self.default_link)
    }

    /// Tunes the inline/parallel cutover: windows with fewer events than
    /// this are dispatched on the coordinator thread. Lower it when per
    /// event work is heavy (e.g. RSA verification), raise it for cheap
    /// payloads. Has no effect on outputs.
    pub fn set_spawn_threshold(&mut self, events: usize) {
        self.spawn_threshold = events;
    }

    /// Enables trace recording (for audits and debugging).
    pub fn enable_trace(&mut self) {
        self.trace_enabled = true;
    }

    /// Enables the convergence-timeline recorder — the sharded
    /// counterpart of
    /// [`Simulator::enable_timeline`](crate::Simulator::enable_timeline),
    /// recording byte-identical windows: event/delivery counts are
    /// folded per window on the coordinator, and queue depth is sampled
    /// at the same engine-independent points (a sim-instant fully
    /// draining).
    pub fn enable_timeline(&mut self, window: crate::time::SimDuration) {
        if self.timeline.is_none() {
            self.timeline = Some(pvr_obs::TimelineRecorder::new(
                window.as_micros(),
                pvr_obs::timeline::SIM_CHANNELS,
            ));
        }
    }

    /// The timeline recorder, if enabled.
    pub fn timeline(&self) -> Option<&pvr_obs::TimelineRecorder> {
        self.timeline.as_ref()
    }

    /// The recorded deliveries in serial processing order — identical
    /// to the serial engine's [`Simulator::trace`](crate::Simulator::trace).
    pub fn trace_sorted(&self) -> Option<Vec<Delivery<P>>> {
        if !self.trace_enabled {
            return None;
        }
        let mut all: Vec<(u64, Delivery<P>)> =
            self.shards.iter().flat_map(|s| s.trace.iter().cloned()).collect();
        all.sort_by_key(|&(seq, ref d)| (d.time, seq));
        Some(all.into_iter().map(|(_, d)| d).collect())
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Injects a message from outside the simulation; delivered after
    /// link latency, exactly like the serial engine's `inject`.
    pub fn inject(&mut self, src: NodeId, dst: NodeId, msg: P) {
        self.stats.injected += 1;
        self.schedule_send(src, dst, msg);
    }

    /// Immutable access to a node, downcast to its concrete type.
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        let shard = &self.shards[*self.node_shard.get(id)? as usize];
        shard.nodes[shard.local_of[&id]].as_any().downcast_ref::<T>()
    }

    /// Mutable access to a node, downcast to its concrete type.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let shard = &mut self.shards[*self.node_shard.get(id)? as usize];
        let local = shard.local_of[&id];
        shard.nodes[local].as_any_mut().downcast_mut::<T>()
    }

    /// Schedules a send on the coordinator: consumes the link DRBG and
    /// assigns the global sequence number. Must only be called from the
    /// serial exchange phase (or before the run starts) to preserve the
    /// serial consumption order.
    fn schedule_send(&mut self, src: NodeId, dst: NodeId, msg: P) {
        assert!(dst < self.node_shard.len(), "send to unknown node {dst}");
        let cfg = self.link_config(src, dst);
        self.stats.sent += 1;
        self.stats.bytes_sent += msg.wire_size() as u64;
        // Pause drops precede the DRBG drop-check, mirroring the serial
        // engine exactly (no randomness consumed for paused sends).
        if self.paused[src] || self.paused[dst] {
            self.stats.dropped += 1;
            return;
        }
        if cfg.down || (cfg.drop_prob > 0.0 && self.rng.chance(cfg.drop_prob)) {
            self.stats.dropped += 1;
            return;
        }
        let jitter = if cfg.jitter.as_micros() > 0 {
            crate::time::SimDuration::from_micros(self.rng.below(cfg.jitter.as_micros() + 1))
        } else {
            crate::time::SimDuration::ZERO
        };
        let at = self.now + cfg.latency + jitter;
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = self.node_shard[dst] as usize;
        self.shards[shard].queue.push(at, (seq, EventKind::Deliver { src, dst, msg }));
    }

    /// Serial exchange: merges every shard's outbox into the order the
    /// serial engine applies actions in — `(cause-sequence,
    /// action-index)` — then routes each action to its destination
    /// calendar, consuming the coordinator DRBG along the way.
    fn exchange(&mut self) {
        let mut merged = std::mem::take(&mut self.merged);
        for shard in &mut self.shards {
            merged.append(&mut shard.outbox);
        }
        merged.sort_unstable_by_key(|&(cause, idx, _, _)| (cause, idx));
        for (_, _, src, action) in merged.drain(..) {
            match action {
                Action::Send { to, msg } => self.schedule_send(src, to, msg),
                Action::SetTimer { delay, timer } => {
                    let at = self.now + delay;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let shard = self.node_shard[src] as usize;
                    self.shards[shard].queue.push(at, (seq, EventKind::Timer { node: src, timer }));
                }
            }
        }
        self.merged = merged;
    }

    /// Folds per-shard counters into the aggregate stats (summation is
    /// order-independent, so this cannot depend on shard layout).
    /// Returns the `(events, delivered)` deltas so the caller can
    /// attribute them to the window just dispatched.
    fn drain_shard_counters(&mut self) -> (u64, u64) {
        let mut events = 0;
        let mut delivered = 0;
        let mut timers = 0;
        for shard in &mut self.shards {
            events += std::mem::take(&mut shard.events);
            delivered += std::mem::take(&mut shard.delivered);
            timers += std::mem::take(&mut shard.timers_fired);
        }
        self.stats.events += events;
        self.stats.delivered += delivered;
        self.stats.timers_fired += timers;
        (events, delivered)
    }

    /// Earliest unapplied fault time, clamped to `now` (matching the
    /// serial engine's rule for late-installed plans).
    fn next_fault_time(&self) -> Option<SimTime> {
        self.faults.as_ref().and_then(FaultInjector::next_time).map(|t| t.max(self.now))
    }

    /// Runs one `on_session` callback on the coordinator thread: the
    /// agent is swapped out of its shard, the context draws from the
    /// coordinator's `"netsim"` DRBG (exactly what the serial engine's
    /// dispatch uses), and the resulting actions are applied
    /// immediately in issue order — the serial engine's semantics.
    fn dispatch_session(&mut self, node: NodeId, peer: NodeId, up: bool) {
        let shard = self.node_shard[node] as usize;
        let local = self.shards[shard].local_of[&node];
        let mut agent = std::mem::replace(
            &mut self.shards[shard].nodes[local],
            Box::new(InertAgent) as Box<dyn Agent<P> + Send>,
        );
        let mut ctx = Context::renew(self.now, node, &mut self.rng, Vec::new());
        agent.on_session(&mut ctx, peer, up);
        let actions = ctx.into_actions();
        self.shards[shard].nodes[local] = agent;
        for action in actions {
            match action {
                Action::Send { to, msg } => self.schedule_send(node, to, msg),
                Action::SetTimer { delay, timer } => {
                    let at = self.now + delay;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let s = self.node_shard[node] as usize;
                    self.shards[s].queue.push(at, (seq, EventKind::Timer { node, timer }));
                }
            }
        }
    }

    /// Applies one fault — the same sequence of link mutations and
    /// session callbacks as the serial engine's `apply_fault`.
    fn apply_fault(&mut self, fault: Fault) {
        match fault {
            Fault::LinkDown { a, b } => {
                self.stats.link_down += 1;
                self.set_link_down(a, b, true);
                self.set_link_down(b, a, true);
                self.dispatch_session(a, b, false);
                self.dispatch_session(b, a, false);
            }
            Fault::LinkUp { a, b } => {
                self.stats.link_up += 1;
                self.set_link_down(a, b, false);
                self.set_link_down(b, a, false);
                self.dispatch_session(a, b, true);
                self.dispatch_session(b, a, true);
            }
            Fault::LinkDegrade { a, b, drop_prob, jitter } => {
                self.stats.link_degrades += 1;
                for (src, dst) in [(a, b), (b, a)] {
                    let mut cfg = self.link_config(src, dst);
                    cfg.drop_prob = drop_prob;
                    cfg.jitter = jitter;
                    self.links.insert((src, dst), cfg);
                }
            }
            Fault::SessionReset { a, b } => {
                self.stats.session_resets += 1;
                self.dispatch_session(a, b, false);
                self.dispatch_session(b, a, false);
                self.dispatch_session(a, b, true);
                self.dispatch_session(b, a, true);
            }
            Fault::NodePause { node } => {
                self.stats.node_pauses += 1;
                self.paused[node] = true;
            }
            Fault::NodeResume { node } => {
                self.paused[node] = false;
            }
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Start-up is a synthetic window at t=0: causes are node ids, so
        // the exchange sorts actions by (node, action-index) — the order
        // the serial engine applies them in.
        let now = self.now;
        for shard in &mut self.shards {
            shard.run_starts(now);
        }
        self.exchange();
    }

    /// Dispatches every event in the window at `time`, spawning one
    /// worker per non-empty shard when the window is large enough to
    /// amortize thread start-up.
    fn run_window(&mut self, time: SimTime) {
        let trace = self.trace_enabled;
        let active = self.shards.iter().filter(|s| s.queue.peek_time() == Some(time)).count();
        let pending: usize = self.shards.iter().map(|s| s.queue.len_at(time)).sum();
        if active <= 1 || pending < self.spawn_threshold {
            for shard in &mut self.shards {
                shard.run_bucket(time, trace);
            }
        } else {
            std::thread::scope(|scope| {
                for shard in self.shards.iter_mut() {
                    if shard.queue.peek_time() == Some(time) {
                        scope.spawn(move || shard.run_bucket(time, trace));
                    }
                }
            });
        }
        self.exchange();
        let (events, delivered) = self.drain_shard_counters();
        if let Some(tl) = &mut self.timeline {
            use pvr_obs::timeline::{SIM_DELIVERED, SIM_EVENTS};
            // Every event dispatched by this call carried timestamp
            // `time` — exactly where the serial engine counts them.
            tl.add(time.as_micros(), SIM_EVENTS, events);
            tl.add(time.as_micros(), SIM_DELIVERED, delivered);
        }
    }

    /// Runs until every calendar drains or a bound is hit. Returns the
    /// reason the run stopped — with outputs identical to the serial
    /// engine's [`run`](crate::Simulator::run) (modulo the `max_events`
    /// granularity noted in the module docs).
    pub fn run(&mut self, limits: RunLimits) -> StopReason {
        self.start_if_needed();
        loop {
            if let Some(max) = limits.max_events {
                if self.stats.events >= max {
                    return StopReason::EventLimit;
                }
            }
            let qhead = self.shards.iter().filter_map(|s| s.queue.peek_time()).min();
            let fhead = self.next_fault_time();
            let head = match (qhead, fhead) {
                (Some(q), Some(f)) => Some(q.min(f)),
                (q, f) => q.or(f),
            };
            let time = match head {
                Some(t) => t,
                None => return StopReason::Quiescent,
            };
            if let Some(deadline) = limits.deadline {
                if time > deadline {
                    return StopReason::Deadline;
                }
            }
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            // A due fault fires before any queued event at the same
            // instant (the serial engine's rule); the window itself, if
            // any, runs on the next loop iteration.
            if fhead.is_some_and(|f| f <= time) {
                while let Some(fault) = self.faults.as_mut().and_then(|f| f.pop_due(time)) {
                    self.apply_fault(fault);
                }
                continue;
            }
            self.run_window(time);
            // Mirror the serial engine's drained-instant rule: the
            // queue-depth sample and the barrier hook both run only
            // once the instant `time` has fully drained (zero-latency
            // cascades re-enter the window above), at which point both
            // engines hold the same pending set.
            if self.timeline.is_some() || self.barrier.is_some() {
                let head = self.shards.iter().filter_map(|s| s.queue.peek_time()).min();
                if head != Some(time) {
                    if self.timeline.is_some() {
                        let depth: usize = self.shards.iter().map(|s| s.queue.len()).sum();
                        if let Some(tl) = &mut self.timeline {
                            tl.set(
                                time.as_micros(),
                                pvr_obs::timeline::SIM_QUEUE_DEPTH,
                                depth as u64,
                            );
                        }
                    }
                    // Depth first, hook second — identical to the
                    // serial engine, so hook timers never count into
                    // the sample on either engine.
                    if self.barrier.is_some() {
                        let mut hook = self.barrier.take().expect("checked above");
                        let timers = hook.on_barrier(time);
                        self.barrier = Some(hook);
                        for (node, delay, timer) in timers {
                            let at = time + delay;
                            let seq = self.next_seq;
                            self.next_seq += 1;
                            let s = self.node_shard[node] as usize;
                            self.shards[s].queue.push(at, (seq, EventKind::Timer { node, timer }));
                        }
                    }
                }
            }
        }
    }
}

impl<P: Payload + Send + pvr_crypto::encoding::Wire> ShardedSimulator<P> {
    /// Serializes the engine's dynamic state — the sharded counterpart
    /// of `Simulator::save_state`. On top of the state both engines
    /// share, this captures the global sequence counter, the
    /// coordinator DRBG, and every shard's DRBG and sequence-tagged
    /// calendar; the resulting bytes are therefore *shard-shaped* and
    /// restore only into a simulator with the same shard count
    /// (cross-shard-count recovery goes through store-level RIB
    /// snapshots, which are engine-invariant).
    ///
    /// Must be called between `run` invocations (outboxes drained);
    /// refuses when a trace or barrier hook is active, like the serial
    /// engine.
    pub fn save_state(&self) -> Result<Vec<u8>, crate::state::StateError> {
        use crate::state::{self, CommonState, StateError, TAG_SHARDED};
        use pvr_crypto::encoding::Wire;
        if self.trace_enabled {
            return Err(StateError::TraceActive);
        }
        if self.barrier.is_some() {
            return Err(StateError::BarrierActive);
        }
        debug_assert!(
            self.shards.iter().all(|s| s.outbox.is_empty() && s.events == 0),
            "save_state must be called between runs, not mid-window"
        );
        let mut links: Vec<_> = self.links.iter().map(|(&k, &v)| (k, v)).collect();
        links.sort_unstable_by_key(|&(key, _)| key);
        let common = CommonState {
            node_count: self.node_shard.len(),
            now: self.now,
            started: self.started,
            stats: self.stats.clone(),
            default_link: self.default_link,
            links,
            paused: self.paused.clone(),
            faults: self.faults.as_ref().map(|f| f.remaining().to_vec()),
            timeline: self
                .timeline
                .as_ref()
                .map(|tl| (tl.window_us(), tl.channels(), tl.cells().clone())),
        };
        let mut out = vec![TAG_SHARDED];
        (self.shards.len() as u64).encode(&mut out);
        common.encode(&mut out);
        self.next_seq.encode(&mut out);
        state::encode_drbg(&self.rng, &mut out);
        for shard in &self.shards {
            state::encode_drbg(&shard.rng, &mut out);
            (shard.queue.len() as u64).encode(&mut out);
            for (time, (seq, kind)) in shard.queue.iter() {
                time.encode(&mut out);
                seq.encode(&mut out);
                state::encode_event(kind, &mut out);
            }
        }
        Ok(out)
    }

    /// Restores state saved by [`save_state`](Self::save_state) into
    /// this simulator, which must hold the same node and shard layout.
    /// Decode-then-apply: any error leaves the simulator untouched.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), crate::state::StateError> {
        use crate::state::{self, CommonState, StateError, TAG_SERIAL, TAG_SHARDED};
        use pvr_crypto::encoding::{Reader, Wire, WireError};
        if self.trace_enabled {
            return Err(StateError::TraceActive);
        }
        if self.barrier.is_some() {
            return Err(StateError::BarrierActive);
        }
        let mut r = Reader::new(bytes);
        match r.take(1).map_err(StateError::from)?[0] {
            TAG_SHARDED => {}
            TAG_SERIAL => return Err(StateError::EngineMismatch),
            _ => return Err(StateError::Corrupt("engine discriminant")),
        }
        let shard_count = state::checked_count(&mut r, 1)? as usize;
        if shard_count != self.shards.len() {
            return Err(StateError::ShardCountMismatch {
                expected: shard_count,
                found: self.shards.len(),
            });
        }
        let common = CommonState::decode(&mut r)?;
        if common.node_count != self.node_shard.len() {
            return Err(StateError::NodeCountMismatch {
                expected: common.node_count,
                found: self.node_shard.len(),
            });
        }
        let next_seq = u64::decode(&mut r)?;
        let rng = state::decode_drbg(&mut r)?;
        let mut shard_rngs = Vec::with_capacity(shard_count);
        let mut shard_queues = Vec::with_capacity(shard_count);
        for shard_ix in 0..shard_count {
            shard_rngs.push(state::decode_drbg(&mut r)?);
            let event_count = state::checked_count(&mut r, 17)?;
            let mut queue = EventQueue::new();
            let mut last_time = common.now;
            for _ in 0..event_count {
                let time = SimTime::decode(&mut r)?;
                if time < last_time {
                    return Err(StateError::Corrupt("event calendar out of order"));
                }
                last_time = time;
                let seq = u64::decode(&mut r)?;
                if seq >= next_seq {
                    return Err(StateError::Corrupt("event sequence beyond counter"));
                }
                let kind = state::decode_event::<P>(&mut r, common.node_count)?;
                // An event must live on the shard that owns its target
                // node, or later local-index lookups would panic.
                let target = match &kind {
                    EventKind::Deliver { dst, .. } => *dst,
                    EventKind::Timer { node, .. } => *node,
                };
                if self.node_shard[target] as usize != shard_ix {
                    return Err(StateError::Corrupt("event on wrong shard"));
                }
                queue.push(time, (seq, kind));
            }
            shard_queues.push(queue);
        }
        if r.remaining() > 0 {
            return Err(StateError::Wire(WireError::TrailingBytes(r.remaining())));
        }
        // Fully validated — apply.
        self.now = common.now;
        self.started = common.started;
        self.stats = common.stats;
        self.default_link = common.default_link;
        self.links = common.links.into_iter().collect();
        self.paused = common.paused;
        self.faults = common.faults.map(FaultInjector::from_schedule);
        self.timeline =
            common.timeline.map(|(w, c, cells)| pvr_obs::TimelineRecorder::from_cells(w, c, cells));
        self.next_seq = next_seq;
        self.rng = rng;
        for (shard, (rng, queue)) in
            self.shards.iter_mut().zip(shard_rngs.into_iter().zip(shard_queues))
        {
            shard.rng = rng;
            shard.queue = queue;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::time::SimDuration;
    use std::any::Any;

    #[derive(Clone, Debug, PartialEq)]
    struct Token(u32);

    impl Payload for Token {
        fn wire_size(&self) -> usize {
            4
        }
    }

    #[derive(Clone)]
    struct PingPong {
        peer: NodeId,
        received: Vec<u32>,
        kick_off: bool,
    }

    impl Agent<Token> for PingPong {
        fn on_start(&mut self, ctx: &mut Context<Token>) {
            if self.kick_off {
                ctx.send(self.peer, Token(8));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<Token>, _from: NodeId, msg: Token) {
            self.received.push(msg.0);
            if msg.0 > 0 {
                ctx.send(self.peer, Token(msg.0 - 1));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// `(now, stats, trace as (time, src, dst, token))`.
    type Fingerprint = (SimTime, SimStats, Vec<(SimTime, NodeId, NodeId, u32)>);

    fn fingerprint_serial(sim: &Simulator<Token>) -> Fingerprint {
        (
            sim.now(),
            sim.stats().clone(),
            sim.trace().unwrap().iter().map(|d| (d.time, d.src, d.dst, d.msg.0)).collect(),
        )
    }

    fn fingerprint_sharded(sim: &ShardedSimulator<Token>) -> Fingerprint {
        (
            sim.now(),
            sim.stats().clone(),
            sim.trace_sorted().unwrap().iter().map(|d| (d.time, d.src, d.dst, d.msg.0)).collect(),
        )
    }

    /// Builds the same 4-node ring in both engines and checks that the
    /// run outputs are identical, including under jitter and loss
    /// (which exercise the DRBG consumption order).
    fn assert_ring_equivalence(link: LinkConfig, shards: usize, seed: u64) {
        let mk_agents = || {
            (0..4)
                .map(|i| PingPong { peer: (i + 1) % 4, received: vec![], kick_off: i == 0 })
                .collect::<Vec<_>>()
        };

        let mut serial: Simulator<Token> = Simulator::new(seed);
        for a in mk_agents() {
            serial.add_node(Box::new(a));
        }
        serial.set_default_link(link);
        serial.enable_trace();
        serial.run(RunLimits::none());

        let mut sharded: ShardedSimulator<Token> = ShardedSimulator::new(seed, shards);
        sharded.set_spawn_threshold(1); // force the threaded path
        for a in mk_agents() {
            sharded.add_node(Box::new(a));
        }
        sharded.set_default_link(link);
        sharded.enable_trace();
        sharded.run(RunLimits::none());

        assert_eq!(fingerprint_serial(&serial), fingerprint_sharded(&sharded));
        for id in 0..4 {
            let s: &PingPong = serial.node(id).unwrap();
            let p: &PingPong = sharded.node(id).unwrap();
            assert_eq!(s.received, p.received, "node {id} state diverged");
        }
    }

    #[test]
    fn matches_serial_on_clean_links() {
        for shards in 1..=4 {
            assert_ring_equivalence(LinkConfig::default(), shards, 1);
        }
    }

    #[test]
    fn matches_serial_under_jitter() {
        let link = LinkConfig::with_latency(SimDuration::from_millis(1))
            .jittered(SimDuration::from_micros(700));
        for shards in 1..=4 {
            assert_ring_equivalence(link, shards, 7);
        }
    }

    #[test]
    fn matches_serial_under_loss_and_jitter() {
        let link = LinkConfig::with_latency(SimDuration::from_millis(2))
            .jittered(SimDuration::from_micros(300))
            .lossy(0.3);
        for shards in 1..=4 {
            for seed in [3, 11, 42] {
                assert_ring_equivalence(link, shards, seed);
            }
        }
    }

    #[test]
    fn matches_serial_with_zero_latency_cascades() {
        // Zero-latency sends land in the current window and must be
        // processed in the same FIFO order as the serial engine.
        assert_ring_equivalence(LinkConfig::with_latency(SimDuration::ZERO), 2, 5);
    }

    struct TimerAgent {
        fired: Vec<u64>,
        peer: NodeId,
    }

    impl Agent<Token> for TimerAgent {
        fn on_start(&mut self, ctx: &mut Context<Token>) {
            ctx.set_timer(SimDuration::from_millis(5), 42);
            ctx.set_timer(SimDuration::from_millis(1), 7);
        }
        fn on_message(&mut self, _: &mut Context<Token>, _: NodeId, _: Token) {}
        fn on_timer(&mut self, ctx: &mut Context<Token>, timer: u64) {
            self.fired.push(timer);
            if timer == 7 {
                ctx.send(self.peer, Token(1));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_match_serial() {
        let mut serial: Simulator<Token> = Simulator::new(9);
        serial.add_node(Box::new(TimerAgent { fired: vec![], peer: 1 }));
        serial.add_node(Box::new(TimerAgent { fired: vec![], peer: 0 }));
        serial.run(RunLimits::none());

        let mut sharded: ShardedSimulator<Token> = ShardedSimulator::new(9, 2);
        sharded.add_node(Box::new(TimerAgent { fired: vec![], peer: 1 }));
        sharded.add_node(Box::new(TimerAgent { fired: vec![], peer: 0 }));
        sharded.run(RunLimits::none());

        assert_eq!(serial.stats(), sharded.stats());
        for id in 0..2 {
            let s: &TimerAgent = serial.node(id).unwrap();
            let p: &TimerAgent = sharded.node(id).unwrap();
            assert_eq!(s.fired, p.fired);
        }
    }

    #[test]
    fn deadline_and_resume_match_serial() {
        let link = LinkConfig::with_latency(SimDuration::from_millis(10));
        let mk = || PingPong { peer: 1, received: vec![], kick_off: true };
        let mk2 = || PingPong { peer: 0, received: vec![], kick_off: false };

        let mut serial: Simulator<Token> = Simulator::new(5);
        serial.add_node(Box::new(mk()));
        serial.add_node(Box::new(mk2()));
        serial.set_default_link(link);
        let r1 = serial.run(RunLimits::until(SimTime(25_000)));

        let mut sharded: ShardedSimulator<Token> = ShardedSimulator::new(5, 2);
        sharded.add_node(Box::new(mk()));
        sharded.add_node(Box::new(mk2()));
        sharded.set_default_link(link);
        let r2 = sharded.run(RunLimits::until(SimTime(25_000)));

        assert_eq!(r1, StopReason::Deadline);
        assert_eq!(r2, StopReason::Deadline);
        assert_eq!(serial.now(), sharded.now());
        assert_eq!(serial.stats(), sharded.stats());

        assert_eq!(serial.run(RunLimits::none()), StopReason::Quiescent);
        assert_eq!(sharded.run(RunLimits::none()), StopReason::Quiescent);
        assert_eq!(serial.stats(), sharded.stats());
        assert_eq!(serial.now(), sharded.now());
    }

    #[test]
    fn injection_matches_serial() {
        let mut serial: Simulator<Token> = Simulator::new(2);
        serial.add_node(Box::new(PingPong { peer: 1, received: vec![], kick_off: false }));
        serial.add_node(Box::new(PingPong { peer: 0, received: vec![], kick_off: false }));
        serial.inject(0, 1, Token(3));
        serial.run(RunLimits::none());

        let mut sharded: ShardedSimulator<Token> = ShardedSimulator::new(2, 2);
        sharded.add_node(Box::new(PingPong { peer: 1, received: vec![], kick_off: false }));
        sharded.add_node(Box::new(PingPong { peer: 0, received: vec![], kick_off: false }));
        sharded.inject(0, 1, Token(3));
        sharded.run(RunLimits::none());

        assert_eq!(serial.stats(), sharded.stats());
        assert_eq!(serial.stats().injected, 1);
    }

    #[test]
    fn timeline_matches_serial_byte_for_byte() {
        // Sim channels (events, deliveries, queue-depth samples) carry
        // no cache carve-out: the recorders must be *equal*, including
        // under jitter and zero-latency cascades.
        for link in [
            LinkConfig::default(),
            LinkConfig::with_latency(SimDuration::ZERO),
            LinkConfig::with_latency(SimDuration::from_millis(1))
                .jittered(SimDuration::from_micros(700)),
        ] {
            let window = SimDuration::from_millis(5);
            let mut serial: Simulator<Token> = Simulator::new(7);
            for i in 0..4 {
                serial.add_node(Box::new(PingPong {
                    peer: (i + 1) % 4,
                    received: vec![],
                    kick_off: i == 0,
                }));
            }
            serial.set_default_link(link);
            serial.enable_timeline(window);
            serial.run(RunLimits::none());

            for shards in [2, 3] {
                let mut sharded: ShardedSimulator<Token> = ShardedSimulator::new(7, shards);
                sharded.set_spawn_threshold(1);
                for i in 0..4 {
                    sharded.add_node(Box::new(PingPong {
                        peer: (i + 1) % 4,
                        received: vec![],
                        kick_off: i == 0,
                    }));
                }
                sharded.set_default_link(link);
                sharded.enable_timeline(window);
                sharded.run(RunLimits::none());
                assert_eq!(
                    serial.timeline().unwrap(),
                    sharded.timeline().unwrap(),
                    "{shards} shards"
                );
            }
        }
    }

    /// Echo agent that also reacts to session faults: on teardown it
    /// notes the loss, on recovery it re-sends a token to the restored
    /// peer — a miniature of the BGP re-announce flow.
    #[derive(Clone)]
    struct SessionAware {
        peer: NodeId,
        received: Vec<u32>,
        sessions: Vec<(NodeId, bool)>,
    }

    impl Agent<Token> for SessionAware {
        fn on_start(&mut self, ctx: &mut Context<Token>) {
            if ctx.id() == 0 {
                ctx.send(self.peer, Token(40));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<Token>, _from: NodeId, msg: Token) {
            self.received.push(msg.0);
            if msg.0 > 0 {
                ctx.send(self.peer, Token(msg.0 - 1));
            }
        }
        fn on_session(&mut self, ctx: &mut Context<Token>, peer: NodeId, up: bool) {
            self.sessions.push((peer, up));
            if up {
                ctx.send(peer, Token(5));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn fault_plan_matches_serial() {
        use crate::fault::{Fault, FaultPlan};
        let mk_plan = || {
            let mut plan = FaultPlan::new();
            plan.flap_link(
                0,
                1,
                SimTime(15_000),
                SimDuration::from_millis(30),
                SimDuration::from_millis(60),
                2,
            );
            plan.push(SimTime(25_000), Fault::NodePause { node: 2 });
            plan.push(SimTime(55_000), Fault::NodeResume { node: 2 });
            plan.push(SimTime(70_000), Fault::SessionReset { a: 2, b: 3 });
            plan.push(
                SimTime(80_000),
                Fault::LinkDegrade {
                    a: 1,
                    b: 2,
                    drop_prob: 0.4,
                    jitter: SimDuration::from_micros(300),
                },
            );
            plan
        };
        let mk_agents = || {
            (0..4)
                .map(|i| SessionAware { peer: (i + 1) % 4, received: vec![], sessions: vec![] })
                .collect::<Vec<_>>()
        };

        let mut serial: Simulator<Token> = Simulator::new(13);
        for a in mk_agents() {
            serial.add_node(Box::new(a));
        }
        serial.enable_trace();
        serial.set_fault_plan(mk_plan());
        serial.run(RunLimits::none());
        assert!(serial.stats().link_down > 0, "plan must actually fire");
        assert_eq!(serial.stats().session_resets, 1);

        for shards in 1..=4 {
            let mut sharded: ShardedSimulator<Token> = ShardedSimulator::new(13, shards);
            sharded.set_spawn_threshold(1);
            for a in mk_agents() {
                sharded.add_node(Box::new(a));
            }
            sharded.enable_trace();
            sharded.set_fault_plan(mk_plan());
            sharded.run(RunLimits::none());
            assert_eq!(fingerprint_serial(&serial), fingerprint_sharded(&sharded), "{shards}");
            for id in 0..4 {
                let s: &SessionAware = serial.node(id).unwrap();
                let p: &SessionAware = sharded.node(id).unwrap();
                assert_eq!(s.received, p.received, "node {id} state diverged");
                assert_eq!(s.sessions, p.sessions, "node {id} session log diverged");
            }
        }
    }

    #[test]
    fn paused_node_drops_traffic_both_engines() {
        use crate::fault::{Fault, FaultPlan};
        let plan = FaultPlan::new()
            .at(SimTime(0), Fault::NodePause { node: 1 })
            .at(SimTime(100_000), Fault::NodeResume { node: 1 });
        let mut serial: Simulator<Token> = Simulator::new(3);
        serial.add_node(Box::new(PingPong { peer: 1, received: vec![], kick_off: true }));
        serial.add_node(Box::new(PingPong { peer: 0, received: vec![], kick_off: false }));
        serial.set_fault_plan(plan.clone());
        serial.run(RunLimits::none());
        // Start-up precedes the t=0 fault, so the kick-off is already in
        // flight (in-flight deliveries survive a pause); the paused
        // node's reply is what gets dropped.
        assert_eq!(serial.stats().delivered, 1);
        assert_eq!(serial.stats().dropped, 1);
        assert_eq!(serial.stats().node_pauses, 1);

        let mut sharded: ShardedSimulator<Token> = ShardedSimulator::new(3, 2);
        sharded.add_node(Box::new(PingPong { peer: 1, received: vec![], kick_off: true }));
        sharded.add_node(Box::new(PingPong { peer: 0, received: vec![], kick_off: false }));
        sharded.set_fault_plan(plan);
        sharded.run(RunLimits::none());
        assert_eq!(serial.stats(), sharded.stats());
    }

    #[test]
    fn explicit_shard_placement() {
        let mut sim: ShardedSimulator<Token> = ShardedSimulator::new(1, 3);
        let a = sim
            .add_node_to_shard(Box::new(PingPong { peer: 1, received: vec![], kick_off: true }), 2);
        let b = sim.add_node_to_shard(
            Box::new(PingPong { peer: 0, received: vec![], kick_off: false }),
            0,
        );
        assert_eq!((a, b), (0, 1));
        assert_eq!(sim.shard_of(a), 2);
        assert_eq!(sim.shard_of(b), 0);
        sim.run(RunLimits::none());
        assert_eq!(sim.stats().delivered, 9);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn send_to_unknown_node_panics() {
        let mut sim: ShardedSimulator<Token> = ShardedSimulator::new(1, 2);
        sim.add_node(Box::new(PingPong { peer: 1, received: vec![], kick_off: false }));
        sim.inject(0, 99, Token(0));
    }
}
