//! Engine checkpoint state: the dynamic half of a simulator as bytes.
//!
//! A checkpoint of a deterministic run needs only the state that is not
//! a pure function of construction inputs: the clock, the DRBG streams,
//! the pending-event calendars, the stats, and whatever the fault plan
//! has not yet applied. Everything else — agents, node layout, link
//! wiring — is rebuilt by the caller from its own configuration, and
//! the engine's `load_state` overlays the dynamic state on top. This
//! module holds the shared codec (`CommonState`, [`Wire`] impls for
//! the engine's value types) plus the typed [`StateError`]; the
//! engine-specific halves (`Simulator::save_state`,
//! `ShardedSimulator::save_state`) live next to their private fields
//! and delegate here, so the serial and sharded encodings cannot drift.
//!
//! Corruption safety: decoding never panics — every shape violation is
//! a typed error — and the engines apply a decoded state only after it
//! has been validated in full, so a failed load leaves the target
//! simulator untouched.

use crate::fault::Fault;
use crate::link::LinkConfig;
use crate::sim::{EventKind, Payload, SimStats};
use crate::time::{SimDuration, SimTime};
use pvr_crypto::drbg::HmacDrbg;
use pvr_crypto::encoding::{Reader, Wire, WireError};
use std::collections::BTreeMap;

/// Why an engine state could not be saved or restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// The simulator has trace recording enabled. Traces are unbounded
    /// audit logs, not run state; a restored run would silently record
    /// only the post-restore suffix, so saving and loading both refuse.
    TraceActive,
    /// A barrier hook is installed. Hooks are arbitrary closures and
    /// cannot be serialized; detach the hook before checkpointing.
    BarrierActive,
    /// The target simulator's node count does not match the saved one.
    NodeCountMismatch {
        /// Nodes in the saved state.
        expected: usize,
        /// Nodes in the target simulator.
        found: usize,
    },
    /// The target's shard count does not match the saved one. (Full
    /// engine checkpoints are shard-shaped; cross-shard-count recovery
    /// goes through the store-level snapshots instead.)
    ShardCountMismatch {
        /// Shards in the saved state.
        expected: usize,
        /// Shards in the target simulator.
        found: usize,
    },
    /// The bytes were written by the other engine (serial vs sharded).
    EngineMismatch,
    /// A low-level decoding failure (truncation, bad discriminant).
    Wire(WireError),
    /// A shape violation the wire layer cannot see (node id out of
    /// range, stats field list drift, bogus counts).
    Corrupt(&'static str),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::TraceActive => write!(f, "cannot checkpoint with trace recording enabled"),
            StateError::BarrierActive => {
                write!(f, "cannot checkpoint with a barrier hook installed")
            }
            StateError::NodeCountMismatch { expected, found } => {
                write!(f, "saved state has {expected} nodes, simulator has {found}")
            }
            StateError::ShardCountMismatch { expected, found } => {
                write!(f, "saved state has {expected} shards, simulator has {found}")
            }
            StateError::EngineMismatch => {
                write!(f, "saved state was written by the other engine (serial vs sharded)")
            }
            StateError::Wire(e) => write!(f, "malformed engine state: {e}"),
            StateError::Corrupt(what) => write!(f, "corrupt engine state: {what}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<WireError> for StateError {
    fn from(e: WireError) -> StateError {
        StateError::Wire(e)
    }
}

/// Engine discriminant byte leading every engine-state encoding.
pub(crate) const TAG_SERIAL: u8 = 0;
/// Engine discriminant for the sharded engine.
pub(crate) const TAG_SHARDED: u8 = 1;

impl Wire for SimTime {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SimTime(u64::decode(r)?))
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for SimDuration {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_micros().encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SimDuration::from_micros(u64::decode(r)?))
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for LinkConfig {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.latency.encode(buf);
        self.jitter.encode(buf);
        // f64 via its IEEE-754 bits: exact round-trip, no text detour.
        self.drop_prob.to_bits().encode(buf);
        self.down.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let latency = SimDuration::decode(r)?;
        let jitter = SimDuration::decode(r)?;
        let drop_prob = f64::from_bits(u64::decode(r)?);
        if !(0.0..=1.0).contains(&drop_prob) {
            return Err(WireError::Invalid("drop probability out of range"));
        }
        let down = bool::decode(r)?;
        Ok(LinkConfig { latency, jitter, drop_prob, down })
    }
    fn encoded_len(&self) -> usize {
        8 + 8 + 8 + 1
    }
}

impl Wire for Fault {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            Fault::LinkDown { a, b } => {
                buf.push(0);
                (a as u64).encode(buf);
                (b as u64).encode(buf);
            }
            Fault::LinkUp { a, b } => {
                buf.push(1);
                (a as u64).encode(buf);
                (b as u64).encode(buf);
            }
            Fault::LinkDegrade { a, b, drop_prob, jitter } => {
                buf.push(2);
                (a as u64).encode(buf);
                (b as u64).encode(buf);
                drop_prob.to_bits().encode(buf);
                jitter.encode(buf);
            }
            Fault::SessionReset { a, b } => {
                buf.push(3);
                (a as u64).encode(buf);
                (b as u64).encode(buf);
            }
            Fault::NodePause { node } => {
                buf.push(4);
                (node as u64).encode(buf);
            }
            Fault::NodeResume { node } => {
                buf.push(5);
                (node as u64).encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        fn node(r: &mut Reader<'_>) -> Result<usize, WireError> {
            Ok(u64::decode(r)? as usize)
        }
        let tag = r.take(1)?[0];
        Ok(match tag {
            0 => Fault::LinkDown { a: node(r)?, b: node(r)? },
            1 => Fault::LinkUp { a: node(r)?, b: node(r)? },
            2 => {
                let a = node(r)?;
                let b = node(r)?;
                let drop_prob = f64::from_bits(u64::decode(r)?);
                if !(0.0..=1.0).contains(&drop_prob) {
                    return Err(WireError::Invalid("drop probability out of range"));
                }
                Fault::LinkDegrade { a, b, drop_prob, jitter: SimDuration::decode(r)? }
            }
            3 => Fault::SessionReset { a: node(r)?, b: node(r)? },
            4 => Fault::NodePause { node: node(r)? },
            5 => Fault::NodeResume { node: node(r)? },
            _ => return Err(WireError::Invalid("fault discriminant")),
        })
    }
}

/// Engine state shared verbatim between the serial and sharded
/// simulators. Queues and DRBG streams are engine-shaped and encoded by
/// the respective engine on top of this.
pub(crate) struct CommonState {
    pub(crate) node_count: usize,
    pub(crate) now: SimTime,
    pub(crate) started: bool,
    pub(crate) stats: SimStats,
    pub(crate) default_link: LinkConfig,
    /// Per-pair link overrides, sorted by `(src, dst)` for canonical
    /// bytes (the in-memory map is an unordered `HashMap`).
    pub(crate) links: Vec<((usize, usize), LinkConfig)>,
    pub(crate) paused: Vec<bool>,
    /// `Some(remaining schedule)` when a fault plan is installed.
    pub(crate) faults: Option<Vec<(SimTime, Fault)>>,
    /// `(window_us, channels, cells)` when the timeline is enabled.
    pub(crate) timeline: Option<(u64, usize, BTreeMap<u64, Vec<u64>>)>,
}

impl CommonState {
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        (self.node_count as u64).encode(out);
        self.now.encode(out);
        self.started.encode(out);
        let fields = self.stats.fields();
        (fields.len() as u64).encode(out);
        for (name, value) in fields {
            name.to_string().encode(out);
            value.encode(out);
        }
        self.default_link.encode(out);
        (self.links.len() as u64).encode(out);
        for &((src, dst), cfg) in &self.links {
            (src as u64).encode(out);
            (dst as u64).encode(out);
            cfg.encode(out);
        }
        (self.paused.len() as u64).encode(out);
        for &p in &self.paused {
            p.encode(out);
        }
        match &self.faults {
            None => out.push(0),
            Some(schedule) => {
                out.push(1);
                (schedule.len() as u64).encode(out);
                for &(t, fault) in schedule {
                    t.encode(out);
                    fault.encode(out);
                }
            }
        }
        match &self.timeline {
            None => out.push(0),
            Some((window_us, channels, cells)) => {
                out.push(1);
                window_us.encode(out);
                (*channels as u64).encode(out);
                (cells.len() as u64).encode(out);
                for (start, values) in cells {
                    start.encode(out);
                    (values.len() as u64).encode(out);
                    for v in values {
                        v.encode(out);
                    }
                }
            }
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<CommonState, StateError> {
        let node_count = checked_count(r, 1)? as usize;
        let now = SimTime::decode(r)?;
        let started = bool::decode(r)?;
        let field_count = checked_count(r, 12)?;
        let mut fields = Vec::with_capacity(field_count as usize);
        for _ in 0..field_count {
            let name = String::decode(r)?;
            let value = u64::decode(r)?;
            fields.push((name, value));
        }
        let stats = SimStats::from_fields(fields.iter().map(|(n, v)| (n.as_str(), *v)))
            .ok_or(StateError::Corrupt("stats field list does not match this build"))?;
        let default_link = LinkConfig::decode(r)?;
        let link_count = checked_count(r, 17)?;
        let mut links = Vec::with_capacity(link_count as usize);
        for _ in 0..link_count {
            let src = u64::decode(r)? as usize;
            let dst = u64::decode(r)? as usize;
            if src >= node_count || dst >= node_count {
                return Err(StateError::Corrupt("link endpoint out of range"));
            }
            links.push(((src, dst), LinkConfig::decode(r)?));
        }
        let paused_count = checked_count(r, 1)? as usize;
        if paused_count != node_count {
            return Err(StateError::Corrupt("pause flags disagree with node count"));
        }
        let mut paused = Vec::with_capacity(paused_count);
        for _ in 0..paused_count {
            paused.push(bool::decode(r)?);
        }
        let faults = match r.take(1)?[0] {
            0 => None,
            1 => {
                let n = checked_count(r, 9)?;
                let mut schedule = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let t = SimTime::decode(r)?;
                    let fault = Fault::decode(r)?;
                    if fault_nodes(&fault).iter().any(|&id| id >= node_count) {
                        return Err(StateError::Corrupt("fault node out of range"));
                    }
                    schedule.push((t, fault));
                }
                Some(schedule)
            }
            _ => return Err(StateError::Corrupt("fault-plan discriminant")),
        };
        let timeline = match r.take(1)?[0] {
            0 => None,
            1 => {
                let window_us = u64::decode(r)?;
                let channels = u64::decode(r)? as usize;
                if window_us == 0 || channels == 0 || channels > 64 {
                    return Err(StateError::Corrupt("timeline shape out of range"));
                }
                let cell_count = checked_count(r, 8)?;
                let mut cells = BTreeMap::new();
                for _ in 0..cell_count {
                    let start = u64::decode(r)?;
                    let width = checked_count(r, 8)? as usize;
                    if width != channels {
                        return Err(StateError::Corrupt("timeline cell width mismatch"));
                    }
                    let mut values = Vec::with_capacity(width);
                    for _ in 0..width {
                        values.push(u64::decode(r)?);
                    }
                    if cells.insert(start, values).is_some() {
                        return Err(StateError::Corrupt("duplicate timeline window"));
                    }
                }
                Some((window_us, channels, cells))
            }
            _ => return Err(StateError::Corrupt("timeline discriminant")),
        };
        Ok(CommonState {
            node_count,
            now,
            started,
            stats,
            default_link,
            links,
            paused,
            faults,
            timeline,
        })
    }
}

/// The node ids a fault touches, for range validation.
fn fault_nodes(fault: &Fault) -> Vec<usize> {
    match *fault {
        Fault::LinkDown { a, b }
        | Fault::LinkUp { a, b }
        | Fault::LinkDegrade { a, b, .. }
        | Fault::SessionReset { a, b } => vec![a, b],
        Fault::NodePause { node } | Fault::NodeResume { node } => vec![node],
    }
}

/// Reads a `u64` count and rejects values whose minimal encoding could
/// not fit in the remaining input (each counted item costs at least
/// `min_item_len` bytes) — a cheap guard against allocating gigabytes
/// for a corrupt length prefix.
pub(crate) fn checked_count(r: &mut Reader<'_>, min_item_len: usize) -> Result<u64, StateError> {
    let n = u64::decode(r)?;
    if n.saturating_mul(min_item_len.max(1) as u64) > r.remaining() as u64 {
        return Err(StateError::Corrupt("count exceeds remaining input"));
    }
    Ok(n)
}

/// Appends a DRBG's exported state.
pub(crate) fn encode_drbg(rng: &HmacDrbg, out: &mut Vec<u8>) {
    out.extend_from_slice(&rng.state_bytes());
}

/// Reads back a DRBG saved by [`encode_drbg`].
pub(crate) fn decode_drbg(r: &mut Reader<'_>) -> Result<HmacDrbg, StateError> {
    let state = r.take_array::<{ HmacDrbg::STATE_LEN }>()?;
    Ok(HmacDrbg::from_state_bytes(&state))
}

/// Appends one queued event.
pub(crate) fn encode_event<P: Payload + Wire>(kind: &EventKind<P>, out: &mut Vec<u8>) {
    match kind {
        EventKind::Deliver { src, dst, msg } => {
            out.push(0);
            (*src as u64).encode(out);
            (*dst as u64).encode(out);
            msg.encode(out);
        }
        EventKind::Timer { node, timer } => {
            out.push(1);
            (*node as u64).encode(out);
            timer.encode(out);
        }
    }
}

/// Reads back one queued event, validating node ids against
/// `node_count` so a corrupt id cannot panic the event loop later.
pub(crate) fn decode_event<P: Payload + Wire>(
    r: &mut Reader<'_>,
    node_count: usize,
) -> Result<EventKind<P>, StateError> {
    match r.take(1)?[0] {
        0 => {
            let src = u64::decode(r)? as usize;
            let dst = u64::decode(r)? as usize;
            if src >= node_count || dst >= node_count {
                return Err(StateError::Corrupt("event node out of range"));
            }
            Ok(EventKind::Deliver { src, dst, msg: P::decode(r)? })
        }
        1 => {
            let node = u64::decode(r)? as usize;
            if node >= node_count {
                return Err(StateError::Corrupt("event node out of range"));
            }
            Ok(EventKind::Timer { node, timer: u64::decode(r)? })
        }
        _ => Err(StateError::Corrupt("event discriminant")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvr_crypto::encoding::decode_exact;

    #[test]
    fn link_config_round_trips() {
        let cfg = LinkConfig::with_latency(SimDuration::from_millis(7))
            .jittered(SimDuration::from_micros(123))
            .lossy(0.375);
        let bytes = cfg.to_wire();
        assert_eq!(bytes.len(), cfg.encoded_len());
        assert_eq!(decode_exact::<LinkConfig>(&bytes).unwrap(), cfg);
    }

    #[test]
    fn link_config_rejects_bad_probability() {
        // Bypass the builder's own range assert via struct syntax.
        let cfg = LinkConfig { drop_prob: 2.0, ..LinkConfig::default() };
        let bytes = cfg.to_wire();
        assert!(decode_exact::<LinkConfig>(&bytes).is_err());
    }

    #[test]
    fn fault_round_trips() {
        let faults = [
            Fault::LinkDown { a: 1, b: 2 },
            Fault::LinkUp { a: 3, b: 0 },
            Fault::LinkDegrade { a: 1, b: 4, drop_prob: 0.25, jitter: SimDuration::from_micros(9) },
            Fault::SessionReset { a: 5, b: 6 },
            Fault::NodePause { node: 7 },
            Fault::NodeResume { node: 7 },
        ];
        for f in faults {
            assert_eq!(decode_exact::<Fault>(&f.to_wire()).unwrap(), f);
        }
        assert!(decode_exact::<Fault>(&[9]).is_err());
    }

    #[test]
    fn checked_count_guards_absurd_lengths() {
        let mut bytes = Vec::new();
        u64::MAX.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        assert!(matches!(checked_count(&mut r, 4), Err(StateError::Corrupt(_))));
    }
}
