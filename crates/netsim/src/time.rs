//! Simulated time.
//!
//! The simulator is a logical-time discrete-event system: all latencies
//! and timers are expressed in [`SimDuration`] microseconds, and the
//! clock only advances when the event queue does. Nothing in the
//! workspace reads wall-clock time during a simulation, which is what
//! makes runs bit-reproducible.

/// An instant in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Adds a duration.
    pub fn after(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Time elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Rendered as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1000)
    }

    /// From seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }
}

impl std::fmt::Debug for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{}µs", self.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e6)
        } else if self.0 >= 1000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

impl std::fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        self.after(d)
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(t.as_micros(), 2000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(2));
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(1) + SimDuration::from_micros(1), SimDuration(1_000_001));
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime(5).to_string(), "5µs");
        assert_eq!(SimTime(5_000).to_string(), "5.000ms");
        assert_eq!(SimTime(5_000_000).to_string(), "5.000s");
    }

    #[test]
    fn saturation() {
        let t = SimTime(u64::MAX) + SimDuration(10);
        assert_eq!(t.0, u64::MAX);
    }
}
