//! The discrete-event simulator core.
//!
//! Design follows the smoltcp school: a synchronous, poll-driven event
//! loop with no hidden concurrency — every run is a deterministic
//! function of (agent code, topology, seed). Agents exchange typed
//! messages; the simulator owns the clock, the event queue, the links,
//! and the statistics.
//!
//! Determinism rules:
//! * events are ordered by `(time, sequence-number)` — ties broken by
//!   insertion order, never by map iteration order;
//! * all randomness (jitter, drops) comes from one seeded [`HmacDrbg`];
//! * agents only interact with the world through [`Context`].

use crate::fault::{Fault, FaultInjector, FaultPlan};
use crate::link::LinkConfig;
use crate::time::{SimDuration, SimTime};
use pvr_crypto::drbg::HmacDrbg;
use std::any::Any;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Index of a node within the simulator.
pub type NodeId = usize;

/// Payloads must expose their serialized size for overhead accounting
/// (experiments E5/E8/E14 report bytes on the wire).
///
/// Contract for internet-scale runs: both required operations sit on
/// the per-message hot path, so `Clone` should be O(1)-ish (share large
/// attribute data behind `Arc`s, as `pvr-bgp`'s routes and attestation
/// chains do) and `wire_size` should be arithmetic — computed from the
/// payload's shape, never by encoding it. The simulator calls
/// `wire_size` on every send and `clone` on every traced delivery.
pub trait Payload: Clone + 'static {
    /// Serialized size in bytes.
    fn wire_size(&self) -> usize;
}

/// A protocol participant.
///
/// `on_message` / `on_timer` receive a [`Context`] through which the
/// agent sends messages and arms timers; mutations are applied by the
/// simulator after the callback returns, preserving determinism.
pub trait Agent<P: Payload>: Any {
    /// Called once before the first event is processed.
    fn on_start(&mut self, _ctx: &mut Context<P>) {}

    /// Called for each delivered message.
    fn on_message(&mut self, ctx: &mut Context<P>, from: NodeId, msg: P);

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<P>, _timer: u64) {}

    /// Called when the fault layer changes this node's session state
    /// toward `peer`: `up == false` on link-down/session-teardown,
    /// `up == true` on recovery. Default: ignore (non-session
    /// protocols are unaffected by fault plans).
    fn on_session(&mut self, _ctx: &mut Context<P>, _peer: NodeId, _up: bool) {}

    /// Downcast support (simulators are heterogeneous collections).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The API surface agents see during a callback.
pub struct Context<'a, P> {
    now: SimTime,
    self_id: NodeId,
    rng: &'a mut HmacDrbg,
    actions: Vec<Action<P>>,
}

pub(crate) enum Action<P> {
    Send { to: NodeId, msg: P },
    SetTimer { delay: SimDuration, timer: u64 },
}

impl<'a, P> Context<'a, P> {
    /// Builds a callback context over a recycled action buffer. Shared
    /// between the serial engine and the sharded engine so both apply
    /// identical semantics to agent callbacks.
    pub(crate) fn renew(
        now: SimTime,
        self_id: NodeId,
        rng: &'a mut HmacDrbg,
        actions: Vec<Action<P>>,
    ) -> Context<'a, P> {
        Context { now, self_id, rng, actions }
    }

    /// Consumes the context, returning the buffered actions in the
    /// order the agent issued them.
    pub(crate) fn into_actions(self) -> Vec<Action<P>> {
        self.actions
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node's own id.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to` over the configured link.
    pub fn send(&mut self, to: NodeId, msg: P) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Arms a one-shot timer; `timer` is returned in `on_timer`.
    pub fn set_timer(&mut self, delay: SimDuration, timer: u64) {
        self.actions.push(Action::SetTimer { delay, timer });
    }

    /// Deterministic per-simulation randomness (e.g. for randomized
    /// protocol choices inside agents).
    pub fn rng(&mut self) -> &mut HmacDrbg {
        self.rng
    }
}

/// One delivered message, as recorded by the trace. Payloads are cloned
/// into the trace — cheap by the [`Payload`] contract, so tracing an
/// internet-scale run no longer copies attribute bytes per delivery.
#[derive(Clone, Debug)]
pub struct Delivery<P> {
    /// Delivery time.
    pub time: SimTime,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// The payload.
    pub msg: P,
}

pvr_obs::metric_struct! {
    /// Aggregate counters for a run.
    ///
    /// Declared through [`pvr_obs::metric_struct!`], so the struct, its
    /// `add` fold, and its registry export (counters named
    /// `pvr_sim_<field>_total`) are generated from one field list and
    /// can never drift apart.
    pub struct SimStats, prefix = "pvr_sim" {
        /// Messages handed to the network by agents.
        pub sent: u64,
        /// Messages delivered to agents.
        pub delivered: u64,
        /// Messages dropped by lossy/down links.
        pub dropped: u64,
        /// Sum of payload wire sizes for sent messages.
        pub bytes_sent: u64,
        /// Timer firings.
        pub timers_fired: u64,
        /// Total events processed.
        pub events: u64,
        /// Messages injected from outside the simulation (attack campaigns,
        /// test harnesses) via [`Simulator::inject`].
        pub injected: u64,
        /// Link-down faults applied by the fault plan.
        pub link_down: u64,
        /// Link-up (recovery) faults applied by the fault plan.
        pub link_up: u64,
        /// Link-degrade (loss/jitter ramp) faults applied.
        pub link_degrades: u64,
        /// Session-reset faults applied by the fault plan.
        pub session_resets: u64,
        /// Node-pause faults applied by the fault plan.
        pub node_pauses: u64,
    }
}

pub(crate) enum EventKind<P> {
    Deliver { src: NodeId, dst: NodeId, msg: P },
    Timer { node: NodeId, timer: u64 },
}

/// The pending-event queue: a time-bucketed calendar.
///
/// Event ordering is `(time, insertion order)` — exactly the old
/// binary-heap-with-sequence-numbers contract — but discrete-event
/// routing workloads concentrate events on a small set of delivery
/// times (link latencies are quantized), so a FIFO per distinct time
/// beats a heap: push and pop are O(log #distinct-times) map walks
/// plus an O(1) deque operation, with none of the heap's per-level
/// payload moves. Emptied buckets are recycled to keep the queue
/// allocation-free in steady state.
///
/// Generic over the queued item: the serial engine stores bare
/// [`EventKind`]s, the sharded engine stores `(global-seq, EventKind)`
/// pairs so cross-shard merges can reconstruct total order.
pub(crate) struct EventQueue<E> {
    buckets: BTreeMap<SimTime, VecDeque<E>>,
    len: usize,
    /// Spare deques from drained buckets, reused for new times.
    spares: Vec<VecDeque<E>>,
}

impl<E> EventQueue<E> {
    pub(crate) fn new() -> EventQueue<E> {
        EventQueue { buckets: BTreeMap::new(), len: 0, spares: Vec::new() }
    }

    pub(crate) fn push(&mut self, time: SimTime, item: E) {
        let bucket =
            self.buckets.entry(time).or_insert_with(|| self.spares.pop().unwrap_or_default());
        bucket.push_back(item);
        self.len += 1;
    }

    /// Earliest pending event time.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.buckets.keys().next().copied()
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, E)> {
        let mut entry = self.buckets.first_entry()?;
        let time = *entry.key();
        let item = entry.get_mut().pop_front().expect("buckets are never left empty");
        self.len -= 1;
        if entry.get().is_empty() {
            let mut spare = entry.remove();
            // Cap the pool: a handful of deques covers the distinct
            // latencies in flight.
            if self.spares.len() < 8 {
                spare.clear();
                self.spares.push(spare);
            }
        }
        Some((time, item))
    }

    /// Total number of pending items.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Number of items scheduled exactly at `time`.
    pub(crate) fn len_at(&self, time: SimTime) -> usize {
        self.buckets.get(&time).map_or(0, VecDeque::len)
    }

    /// Pops the next item only if it is scheduled exactly at `time` —
    /// the window-draining primitive of the sharded engine.
    pub(crate) fn pop_at(&mut self, time: SimTime) -> Option<E> {
        if self.peek_time()? != time {
            return None;
        }
        self.pop().map(|(_, item)| item)
    }

    /// Iterates pending items in pop order (ascending time, FIFO per
    /// bucket) without draining — the checkpoint codec's view of the
    /// calendar.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.buckets.iter().flat_map(|(&t, q)| q.iter().map(move |e| (t, e)))
    }
}

/// A network-level barrier callback, fired whenever a sim-time instant
/// fully drains (no further event is scheduled at the current `now`).
///
/// Drained instants are the one point where the serial and sharded
/// engines provably hold the same pending set (the same rule the
/// convergence timeline uses for queue-depth sampling), which makes a
/// hook fired there — and any timers it schedules — engine-invariant.
/// Fault-only instants never fire the hook on either engine.
///
/// The returned `(node, delay, timer)` triples are scheduled exactly as
/// if each node had called `SetTimer` itself, in the returned order
/// (the sharded engine tags them with fresh global sequence numbers in
/// that order). A hook that returns an empty vec at an empty queue lets
/// the run go quiescent; returned timers keep it alive.
pub trait BarrierHook: Send {
    /// Called at each drained instant; returns timers to schedule.
    fn on_barrier(&mut self, now: SimTime) -> Vec<(NodeId, SimDuration, u64)>;
}

/// The simulator: nodes, links, clock, queue, stats, and optional trace.
pub struct Simulator<P: Payload> {
    nodes: Vec<Box<dyn Agent<P>>>,
    links: HashMap<(NodeId, NodeId), LinkConfig>,
    default_link: LinkConfig,
    queue: EventQueue<EventKind<P>>,
    now: SimTime,
    rng: HmacDrbg,
    stats: SimStats,
    trace: Option<Vec<Delivery<P>>>,
    /// Optional convergence-timeline recorder (sim-time windows; see
    /// `pvr_obs::timeline`). Stamped exclusively with `self.now` — the
    /// sim-time-only tracing rule — so enabling it cannot perturb
    /// determinism.
    timeline: Option<pvr_obs::TimelineRecorder>,
    started: bool,
    /// Recycled buffer for agent actions (see `dispatch`).
    action_scratch: Vec<Action<P>>,
    /// Scheduled fault events, if a plan was installed.
    faults: Option<FaultInjector>,
    /// Per-node pause flags (see [`Fault::NodePause`]).
    paused: Vec<bool>,
    /// Optional drained-instant callback (see [`BarrierHook`]).
    barrier: Option<Box<dyn BarrierHook>>,
}

impl<P: Payload> Simulator<P> {
    /// Creates a simulator with the given seed (all randomness derives
    /// from it) and a default link configuration.
    pub fn new(seed: u64) -> Simulator<P> {
        Simulator {
            nodes: Vec::new(),
            links: HashMap::new(),
            default_link: LinkConfig::default(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: HmacDrbg::from_u64_labeled(seed, "netsim"),
            stats: SimStats::default(),
            trace: None,
            timeline: None,
            started: false,
            action_scratch: Vec::new(),
            faults: None,
            paused: Vec::new(),
            barrier: None,
        }
    }

    /// Installs a [`BarrierHook`], replacing any previous one. The hook
    /// fires at every drained sim-time instant from then on; with no
    /// hook installed the engine's behaviour is bit-identical to before
    /// this API existed.
    pub fn set_barrier_hook(&mut self, hook: Box<dyn BarrierHook>) {
        self.barrier = Some(hook);
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, agent: Box<dyn Agent<P>>) -> NodeId {
        self.nodes.push(agent);
        self.paused.push(false);
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Sets the link configuration used when no per-pair config exists.
    pub fn set_default_link(&mut self, cfg: LinkConfig) {
        self.default_link = cfg;
    }

    /// Configures the directed link `src → dst`.
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        self.links.insert((src, dst), cfg);
    }

    /// Configures both directions between `a` and `b`.
    pub fn set_link_bidi(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        self.set_link(a, b, cfg);
        self.set_link(b, a, cfg);
    }

    /// Takes a directed link down (partition).
    pub fn set_link_down(&mut self, src: NodeId, dst: NodeId, down: bool) {
        let mut cfg = self.link_config(src, dst);
        cfg.down = down;
        self.links.insert((src, dst), cfg);
    }

    /// Installs a fault plan. Faults fire at their scheduled sim times,
    /// before any queued event at the same instant; faults scheduled in
    /// the past fire immediately. Replaces any previous plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan.into_injector());
    }

    fn link_config(&self, src: NodeId, dst: NodeId) -> LinkConfig {
        self.links.get(&(src, dst)).copied().unwrap_or(self.default_link)
    }

    /// Enables trace recording (for audits and debugging).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded trace, if enabled.
    pub fn trace(&self) -> Option<&[Delivery<P>]> {
        self.trace.as_deref()
    }

    /// Enables the convergence-timeline recorder with `window`-wide
    /// sim-time windows. Events and deliveries are counted into the
    /// window containing their processing time; queue depth is sampled
    /// whenever a sim-time instant fully drains — the one point where
    /// the serial and sharded engines provably hold the same pending
    /// set, which is what makes the samples byte-identical across
    /// engines.
    pub fn enable_timeline(&mut self, window: SimDuration) {
        if self.timeline.is_none() {
            self.timeline = Some(pvr_obs::TimelineRecorder::new(
                window.as_micros(),
                pvr_obs::timeline::SIM_CHANNELS,
            ));
        }
    }

    /// The timeline recorder, if enabled.
    pub fn timeline(&self) -> Option<&pvr_obs::TimelineRecorder> {
        self.timeline.as_ref()
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Injects a message from outside the simulation (e.g. a test
    /// harness kicking off a round, or an attack campaign forging
    /// announcements); delivered after link latency.
    pub fn inject(&mut self, src: NodeId, dst: NodeId, msg: P) {
        self.stats.injected += 1;
        self.schedule_send(src, dst, msg);
    }

    /// Immutable access to a node, downcast to its concrete type.
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes.get(id)?.as_any().downcast_ref::<T>()
    }

    /// Mutable access to a node, downcast to its concrete type.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes.get_mut(id)?.as_any_mut().downcast_mut::<T>()
    }

    fn schedule(&mut self, time: SimTime, kind: EventKind<P>) {
        self.queue.push(time, kind);
    }

    fn schedule_send(&mut self, src: NodeId, dst: NodeId, msg: P) {
        assert!(dst < self.nodes.len(), "send to unknown node {dst}");
        let cfg = self.link_config(src, dst);
        self.stats.sent += 1;
        self.stats.bytes_sent += msg.wire_size() as u64;
        // Pause drops happen before the DRBG drop-check so a paused
        // clean link consumes no randomness — the sharded engine's
        // coordinator applies the identical rule.
        if self.paused[src] || self.paused[dst] {
            self.stats.dropped += 1;
            return;
        }
        if cfg.down || (cfg.drop_prob > 0.0 && self.rng.chance(cfg.drop_prob)) {
            self.stats.dropped += 1;
            return;
        }
        let jitter = if cfg.jitter.as_micros() > 0 {
            SimDuration::from_micros(self.rng.below(cfg.jitter.as_micros() + 1))
        } else {
            SimDuration::ZERO
        };
        let at = self.now + cfg.latency + jitter;
        self.schedule(at, EventKind::Deliver { src, dst, msg });
    }

    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action<P>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => self.schedule_send(node, to, msg),
                Action::SetTimer { delay, timer } => {
                    let at = self.now + delay;
                    self.schedule(at, EventKind::Timer { node, timer });
                }
            }
        }
    }

    fn dispatch<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Agent<P>, &mut Context<P>),
    {
        let mut agent =
            std::mem::replace(&mut self.nodes[node], Box::new(InertAgent) as Box<dyn Agent<P>>);
        // The action buffer is recycled across dispatches (one event =
        // one callback, millions of events per convergence run).
        let actions = std::mem::take(&mut self.action_scratch);
        let mut ctx = Context { now: self.now, self_id: node, rng: &mut self.rng, actions };
        f(agent.as_mut(), &mut ctx);
        let mut actions = ctx.actions;
        self.nodes[node] = agent;
        self.apply_actions(node, &mut actions);
        self.action_scratch = actions;
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.nodes.len() {
            self.dispatch(id, |agent, ctx| agent.on_start(ctx));
        }
    }

    /// Earliest unapplied fault time, clamped to `now` (late-installed
    /// plans fire immediately, never in the past).
    fn next_fault_time(&self) -> Option<SimTime> {
        self.faults.as_ref().and_then(FaultInjector::next_time).map(|t| t.max(self.now))
    }

    /// Applies one fault. Link and session faults dispatch
    /// [`Agent::on_session`] on both endpoints (`a` first), consuming
    /// the link DRBG through any actions they produce — the sharded
    /// engine runs the identical sequence on its coordinator.
    fn apply_fault(&mut self, fault: Fault) {
        match fault {
            Fault::LinkDown { a, b } => {
                self.stats.link_down += 1;
                self.set_link_down(a, b, true);
                self.set_link_down(b, a, true);
                self.dispatch(a, |agent, ctx| agent.on_session(ctx, b, false));
                self.dispatch(b, |agent, ctx| agent.on_session(ctx, a, false));
            }
            Fault::LinkUp { a, b } => {
                self.stats.link_up += 1;
                self.set_link_down(a, b, false);
                self.set_link_down(b, a, false);
                self.dispatch(a, |agent, ctx| agent.on_session(ctx, b, true));
                self.dispatch(b, |agent, ctx| agent.on_session(ctx, a, true));
            }
            Fault::LinkDegrade { a, b, drop_prob, jitter } => {
                self.stats.link_degrades += 1;
                for (src, dst) in [(a, b), (b, a)] {
                    let mut cfg = self.link_config(src, dst);
                    cfg.drop_prob = drop_prob;
                    cfg.jitter = jitter;
                    self.links.insert((src, dst), cfg);
                }
            }
            Fault::SessionReset { a, b } => {
                self.stats.session_resets += 1;
                self.dispatch(a, |agent, ctx| agent.on_session(ctx, b, false));
                self.dispatch(b, |agent, ctx| agent.on_session(ctx, a, false));
                self.dispatch(a, |agent, ctx| agent.on_session(ctx, b, true));
                self.dispatch(b, |agent, ctx| agent.on_session(ctx, a, true));
            }
            Fault::NodePause { node } => {
                self.stats.node_pauses += 1;
                self.paused[node] = true;
            }
            Fault::NodeResume { node } => {
                self.paused[node] = false;
            }
        }
    }

    /// Processes a single event or fault instant; returns `false` when
    /// nothing is pending (queue drained and fault plan exhausted).
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        // A due fault fires before any queued event at the same time.
        if let Some(ft) = self.next_fault_time() {
            let fault_first = match self.queue.peek_time() {
                Some(head) => ft <= head,
                None => true,
            };
            if fault_first {
                self.now = ft;
                while let Some(fault) = self.faults.as_mut().and_then(|f| f.pop_due(ft)) {
                    self.apply_fault(fault);
                }
                return true;
            }
        }
        let (time, kind) = match self.queue.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        self.stats.events += 1;
        let delivered = matches!(kind, EventKind::Deliver { .. });
        match kind {
            EventKind::Deliver { src, dst, msg } => {
                self.stats.delivered += 1;
                if let Some(trace) = &mut self.trace {
                    trace.push(Delivery { time: self.now, src, dst, msg: msg.clone() });
                }
                self.dispatch(dst, |agent, ctx| agent.on_message(ctx, src, msg));
            }
            EventKind::Timer { node, timer } => {
                self.stats.timers_fired += 1;
                self.dispatch(node, |agent, ctx| agent.on_timer(ctx, timer));
            }
        }
        if let Some(tl) = &mut self.timeline {
            use pvr_obs::timeline::{SIM_DELIVERED, SIM_EVENTS, SIM_QUEUE_DEPTH};
            let t_us = self.now.as_micros();
            tl.add(t_us, SIM_EVENTS, 1);
            if delivered {
                tl.add(t_us, SIM_DELIVERED, 1);
            }
            // Sample queue depth only when the current sim-instant has
            // fully drained (zero-latency cascades land back in the
            // `now` bucket, so this is checked after dispatch): at that
            // point the pending set is identical in the sharded engine,
            // making the sample engine-independent.
            if self.queue.peek_time() != Some(self.now) {
                tl.set(t_us, SIM_QUEUE_DEPTH, self.queue.len() as u64);
            }
        }
        // Fire the barrier hook at the same drained-instant condition
        // the timeline samples at (and after the depth sample, so hook
        // timers never count into it) — the sharded engine mirrors both
        // the condition and the ordering.
        if self.barrier.is_some() && self.queue.peek_time() != Some(self.now) {
            let mut hook = self.barrier.take().expect("checked above");
            let timers = hook.on_barrier(self.now);
            self.barrier = Some(hook);
            for (node, delay, timer) in timers {
                let at = self.now + delay;
                self.schedule(at, EventKind::Timer { node, timer });
            }
        }
        true
    }

    /// Runs until the event queue drains or a bound is hit. Returns the
    /// reason the run stopped.
    pub fn run(&mut self, limits: RunLimits) -> StopReason {
        self.start_if_needed();
        loop {
            if let Some(max) = limits.max_events {
                if self.stats.events >= max {
                    return StopReason::EventLimit;
                }
            }
            let head = match (self.queue.peek_time(), self.next_fault_time()) {
                (Some(q), Some(f)) => Some(q.min(f)),
                (q, f) => q.or(f),
            };
            if let (Some(head), Some(deadline)) = (head, limits.deadline) {
                if head > deadline {
                    return StopReason::Deadline;
                }
            }
            if !self.step() {
                return StopReason::Quiescent;
            }
        }
    }
}

impl<P: Payload + pvr_crypto::encoding::Wire> Simulator<P> {
    /// Serializes the engine's dynamic state — clock, DRBG, calendar,
    /// stats, link overrides, pause flags, unapplied faults, timeline
    /// cells. Agents are **not** included: the caller owns their
    /// reconstruction and overlays this state via
    /// [`load_state`](Self::load_state) on a freshly built simulator.
    ///
    /// Refuses (typed [`crate::state::StateError`]) when a trace or barrier hook is
    /// active — neither survives a round-trip, and silently dropping
    /// them would corrupt the restored run's observable behaviour.
    pub fn save_state(&self) -> Result<Vec<u8>, crate::state::StateError> {
        use crate::state::{self, CommonState, StateError, TAG_SERIAL};
        use pvr_crypto::encoding::Wire;
        if self.trace.is_some() {
            return Err(StateError::TraceActive);
        }
        if self.barrier.is_some() {
            return Err(StateError::BarrierActive);
        }
        let mut links: Vec<_> = self.links.iter().map(|(&k, &v)| (k, v)).collect();
        links.sort_unstable_by_key(|&(key, _)| key);
        let common = CommonState {
            node_count: self.nodes.len(),
            now: self.now,
            started: self.started,
            stats: self.stats.clone(),
            default_link: self.default_link,
            links,
            paused: self.paused.clone(),
            faults: self.faults.as_ref().map(|f| f.remaining().to_vec()),
            timeline: self
                .timeline
                .as_ref()
                .map(|tl| (tl.window_us(), tl.channels(), tl.cells().clone())),
        };
        let mut out = vec![TAG_SERIAL];
        common.encode(&mut out);
        state::encode_drbg(&self.rng, &mut out);
        (self.queue.len() as u64).encode(&mut out);
        for (time, kind) in self.queue.iter() {
            time.encode(&mut out);
            state::encode_event(kind, &mut out);
        }
        Ok(out)
    }

    /// Restores state saved by [`save_state`](Self::save_state) into
    /// this simulator, which must hold the same number of nodes (the
    /// caller rebuilds agents from its own configuration first).
    ///
    /// The input is decoded and validated in full before anything is
    /// applied: on any error — truncation, corrupt discriminants,
    /// out-of-range node ids, a mismatching stats field list — the
    /// simulator is left exactly as it was.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), crate::state::StateError> {
        use crate::state::{self, CommonState, StateError, TAG_SERIAL, TAG_SHARDED};
        use pvr_crypto::encoding::{Reader, Wire, WireError};
        if self.trace.is_some() {
            return Err(StateError::TraceActive);
        }
        if self.barrier.is_some() {
            return Err(StateError::BarrierActive);
        }
        let mut r = Reader::new(bytes);
        match r.take(1).map_err(StateError::from)?[0] {
            TAG_SERIAL => {}
            TAG_SHARDED => return Err(StateError::EngineMismatch),
            _ => return Err(StateError::Corrupt("engine discriminant")),
        }
        let common = CommonState::decode(&mut r)?;
        if common.node_count != self.nodes.len() {
            return Err(StateError::NodeCountMismatch {
                expected: common.node_count,
                found: self.nodes.len(),
            });
        }
        let rng = state::decode_drbg(&mut r)?;
        let event_count = state::checked_count(&mut r, 9)?;
        let mut queue = EventQueue::new();
        let mut last_time = common.now;
        for _ in 0..event_count {
            let time = SimTime::decode(&mut r)?;
            if time < last_time {
                return Err(StateError::Corrupt("event calendar out of order"));
            }
            last_time = time;
            queue.push(time, state::decode_event::<P>(&mut r, common.node_count)?);
        }
        if r.remaining() > 0 {
            return Err(StateError::Wire(WireError::TrailingBytes(r.remaining())));
        }
        // Fully validated — apply.
        self.now = common.now;
        self.started = common.started;
        self.stats = common.stats;
        self.default_link = common.default_link;
        self.links = common.links.into_iter().collect();
        self.paused = common.paused;
        self.faults = common.faults.map(FaultInjector::from_schedule);
        self.timeline =
            common.timeline.map(|(w, c, cells)| pvr_obs::TimelineRecorder::from_cells(w, c, cells));
        self.rng = rng;
        self.queue = queue;
        Ok(())
    }
}

/// Bounds for [`Simulator::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RunLimits {
    /// Stop before processing any event later than this time.
    pub deadline: Option<SimTime>,
    /// Stop after this many events.
    pub max_events: Option<u64>,
}

impl RunLimits {
    /// No limits: run to quiescence.
    pub fn none() -> RunLimits {
        RunLimits::default()
    }

    /// Run until simulated `deadline`.
    pub fn until(deadline: SimTime) -> RunLimits {
        RunLimits { deadline: Some(deadline), max_events: None }
    }
}

/// Why a [`Simulator::run`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No events left: the protocol converged.
    Quiescent,
    /// The next event lies past the deadline.
    Deadline,
    /// The event budget was exhausted.
    EventLimit,
}

/// Placeholder agent swapped in while a real agent's callback runs.
pub(crate) struct InertAgent;

impl<P: Payload> Agent<P> for InertAgent {
    fn on_message(&mut self, _ctx: &mut Context<P>, _from: NodeId, _msg: P) {
        unreachable!("InertAgent must never receive messages");
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: counts down a token passed between two nodes.
    #[derive(Clone, Debug, PartialEq)]
    struct Token(u32);

    impl Payload for Token {
        fn wire_size(&self) -> usize {
            4
        }
    }

    struct PingPong {
        peer: NodeId,
        received: Vec<u32>,
        kick_off: bool,
    }

    impl Agent<Token> for PingPong {
        fn on_start(&mut self, ctx: &mut Context<Token>) {
            if self.kick_off {
                ctx.send(self.peer, Token(5));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<Token>, _from: NodeId, msg: Token) {
            self.received.push(msg.0);
            if msg.0 > 0 {
                ctx.send(self.peer, Token(msg.0 - 1));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn ping_pong_sim(seed: u64) -> Simulator<Token> {
        let mut sim = Simulator::new(seed);
        let a = sim.add_node(Box::new(PingPong { peer: 1, received: vec![], kick_off: true }));
        let b = sim.add_node(Box::new(PingPong { peer: 0, received: vec![], kick_off: false }));
        assert_eq!((a, b), (0, 1));
        sim
    }

    #[test]
    fn ping_pong_converges() {
        let mut sim = ping_pong_sim(1);
        assert_eq!(sim.run(RunLimits::none()), StopReason::Quiescent);
        let a: &PingPong = sim.node(0).unwrap();
        let b: &PingPong = sim.node(1).unwrap();
        assert_eq!(b.received, vec![5, 3, 1]);
        assert_eq!(a.received, vec![4, 2, 0]);
        assert_eq!(sim.stats().delivered, 6);
        assert_eq!(sim.stats().bytes_sent, 24);
    }

    #[test]
    fn time_advances_with_latency() {
        let mut sim = ping_pong_sim(1);
        sim.set_default_link(LinkConfig::with_latency(SimDuration::from_millis(10)));
        sim.run(RunLimits::none());
        // 6 hops × 10 ms.
        assert_eq!(sim.now().as_micros(), 60_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut sim = ping_pong_sim(seed);
            sim.set_default_link(
                LinkConfig::with_latency(SimDuration::from_millis(1))
                    .jittered(SimDuration::from_micros(500)),
            );
            sim.enable_trace();
            sim.run(RunLimits::none());
            (
                sim.now(),
                sim.stats().clone(),
                sim.trace().unwrap().iter().map(|d| (d.time, d.src, d.dst)).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).2, run(8).2, "different seeds should jitter differently");
    }

    #[test]
    fn lossy_link_drops() {
        let mut sim = ping_pong_sim(3);
        sim.set_default_link(LinkConfig::default().lossy(1.0));
        sim.run(RunLimits::none());
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.stats().dropped, 1); // the kick-off message
    }

    #[test]
    fn partition_blocks_messages() {
        let mut sim = ping_pong_sim(4);
        sim.set_link_down(0, 1, true);
        sim.run(RunLimits::none());
        assert_eq!(sim.stats().delivered, 0);
        // Bringing the link back up lets an injected message through.
        sim.set_link_down(0, 1, false);
        sim.inject(0, 1, Token(0));
        sim.run(RunLimits::none());
        assert_eq!(sim.stats().delivered, 1);
    }

    #[test]
    fn deadline_stops_run() {
        let mut sim = ping_pong_sim(5);
        sim.set_default_link(LinkConfig::with_latency(SimDuration::from_millis(10)));
        let r = sim.run(RunLimits::until(SimTime(25_000)));
        assert_eq!(r, StopReason::Deadline);
        assert!(sim.now().as_micros() <= 25_000);
        // Resume to quiescence.
        assert_eq!(sim.run(RunLimits::none()), StopReason::Quiescent);
    }

    #[test]
    fn event_limit_stops_run() {
        let mut sim = ping_pong_sim(6);
        let r = sim.run(RunLimits { deadline: None, max_events: Some(2) });
        assert_eq!(r, StopReason::EventLimit);
        assert_eq!(sim.stats().events, 2);
    }

    struct TimerAgent {
        fired: Vec<u64>,
    }

    impl Agent<Token> for TimerAgent {
        fn on_start(&mut self, ctx: &mut Context<Token>) {
            ctx.set_timer(SimDuration::from_millis(5), 42);
            ctx.set_timer(SimDuration::from_millis(1), 7);
        }
        fn on_message(&mut self, _: &mut Context<Token>, _: NodeId, _: Token) {}
        fn on_timer(&mut self, _ctx: &mut Context<Token>, timer: u64) {
            self.fired.push(timer);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim: Simulator<Token> = Simulator::new(9);
        sim.add_node(Box::new(TimerAgent { fired: vec![] }));
        sim.run(RunLimits::none());
        let a: &TimerAgent = sim.node(0).unwrap();
        assert_eq!(a.fired, vec![7, 42]);
        assert_eq!(sim.stats().timers_fired, 2);
    }

    #[test]
    fn trace_records_deliveries() {
        let mut sim = ping_pong_sim(10);
        sim.enable_trace();
        sim.run(RunLimits::none());
        let trace = sim.trace().unwrap();
        assert_eq!(trace.len(), 6);
        assert_eq!(trace[0].msg, Token(5));
        assert_eq!(trace[0].src, 0);
        assert_eq!(trace[0].dst, 1);
    }

    #[test]
    fn fifo_ordering_on_equal_latency_links() {
        // Two messages sent back-to-back over the same link must arrive
        // in send order (ties broken by sequence number).
        struct Burst {
            peer: NodeId,
            got: Vec<u32>,
        }
        impl Agent<Token> for Burst {
            fn on_start(&mut self, ctx: &mut Context<Token>) {
                for i in 0..10 {
                    ctx.send(self.peer, Token(i));
                }
            }
            fn on_message(&mut self, _: &mut Context<Token>, _: NodeId, msg: Token) {
                self.got.push(msg.0);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulator<Token> = Simulator::new(11);
        sim.add_node(Box::new(Burst { peer: 1, got: vec![] }));
        sim.add_node(Box::new(Burst { peer: 0, got: vec![] }));
        sim.run(RunLimits::none());
        let b: &Burst = sim.node(1).unwrap();
        assert_eq!(b.got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn send_to_unknown_node_panics() {
        let mut sim = ping_pong_sim(12);
        sim.inject(0, 99, Token(0));
    }
}
