//! Engine checkpoint/restore equivalence: a run interrupted at a
//! deadline, saved, loaded into a freshly built simulator, and resumed
//! must be indistinguishable — stats, clock, timeline, DRBG stream —
//! from the same run left uninterrupted. Exercised on both engines,
//! with jitter and loss (DRBG continuation) and fault plans (remaining
//! schedule round-trip).

use pvr_crypto::encoding::{Reader, Wire, WireError};
use pvr_netsim::sim::Agent;
use pvr_netsim::{
    Context, Fault, FaultPlan, LinkConfig, NodeId, Payload, RunLimits, ShardedSimulator,
    SimDuration, SimTime, Simulator, StateError, StopReason,
};
use std::any::Any;

#[derive(Clone, Debug, PartialEq)]
struct Token(u32);

impl Payload for Token {
    fn wire_size(&self) -> usize {
        4
    }
}

impl Wire for Token {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Token(u32::decode(r)?))
    }
}

/// Relay whose behaviour depends only on message contents, so a
/// freshly built instance continues a restored run identically.
#[derive(Clone)]
struct Relay {
    peer: NodeId,
    kick_off: u32,
}

impl Agent<Token> for Relay {
    fn on_start(&mut self, ctx: &mut Context<Token>) {
        if self.kick_off > 0 {
            ctx.send(self.peer, Token(self.kick_off));
        }
    }
    fn on_message(&mut self, ctx: &mut Context<Token>, _from: NodeId, msg: Token) {
        if msg.0 > 0 {
            ctx.send(self.peer, Token(msg.0 - 1));
        }
    }
    fn on_session(&mut self, ctx: &mut Context<Token>, peer: NodeId, up: bool) {
        if up {
            ctx.send(peer, Token(3));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const SEED: u64 = 21;
const NODES: usize = 4;

fn ring_link() -> LinkConfig {
    LinkConfig::with_latency(SimDuration::from_millis(3))
        .jittered(SimDuration::from_micros(500))
        .lossy(0.1)
}

fn plan() -> FaultPlan {
    FaultPlan::new()
        .at(SimTime(40_000), Fault::LinkDown { a: 0, b: 1 })
        .at(SimTime(90_000), Fault::LinkUp { a: 0, b: 1 })
}

fn serial_ring(with_plan: bool, with_timeline: bool) -> Simulator<Token> {
    let mut sim = Simulator::new(SEED);
    for i in 0..NODES {
        sim.add_node(Box::new(Relay { peer: (i + 1) % NODES, kick_off: u32::from(i == 0) * 60 }));
    }
    sim.set_default_link(ring_link());
    if with_plan {
        sim.set_fault_plan(plan());
    }
    if with_timeline {
        sim.enable_timeline(SimDuration::from_millis(10));
    }
    sim
}

fn sharded_ring(shards: usize, with_plan: bool, with_timeline: bool) -> ShardedSimulator<Token> {
    let mut sim = ShardedSimulator::new(SEED, shards);
    for i in 0..NODES {
        sim.add_node(Box::new(Relay { peer: (i + 1) % NODES, kick_off: u32::from(i == 0) * 60 }));
    }
    sim.set_default_link(ring_link());
    if with_plan {
        sim.set_fault_plan(plan());
    }
    if with_timeline {
        sim.enable_timeline(SimDuration::from_millis(10));
    }
    sim
}

#[test]
fn serial_restore_matches_uninterrupted() {
    for (with_plan, kill_at) in [(false, 20_000), (true, 50_000), (true, 131_072)] {
        let mut baseline = serial_ring(with_plan, true);
        baseline.run(RunLimits::none());

        let mut first = serial_ring(with_plan, true);
        first.run(RunLimits::until(SimTime(kill_at)));
        let bytes = first.save_state().expect("clean engines must checkpoint");
        drop(first);

        // "Crash": rebuild from scratch — without re-installing the
        // fault plan (the checkpoint carries its unapplied tail).
        let mut restored = serial_ring(false, false);
        restored.load_state(&bytes).expect("own bytes must load");
        assert_eq!(restored.run(RunLimits::none()), StopReason::Quiescent);

        assert_eq!(baseline.now(), restored.now(), "kill at {kill_at}");
        assert_eq!(baseline.stats(), restored.stats(), "kill at {kill_at}");
        assert_eq!(baseline.timeline(), restored.timeline(), "kill at {kill_at}");
    }
}

#[test]
fn sharded_restore_matches_uninterrupted() {
    for shards in [1, 2, 4] {
        let mut baseline = sharded_ring(shards, true, true);
        baseline.run(RunLimits::none());

        let mut first = sharded_ring(shards, true, true);
        first.run(RunLimits::until(SimTime(50_000)));
        let bytes = first.save_state().unwrap();
        drop(first);

        let mut restored = sharded_ring(shards, false, false);
        restored.load_state(&bytes).unwrap();
        assert_eq!(restored.run(RunLimits::none()), StopReason::Quiescent);

        assert_eq!(baseline.now(), restored.now(), "{shards} shards");
        assert_eq!(baseline.stats(), restored.stats(), "{shards} shards");
        assert_eq!(baseline.timeline(), restored.timeline(), "{shards} shards");
    }
}

#[test]
fn engines_refuse_traces_and_mismatched_shapes() {
    let mut traced = serial_ring(false, false);
    traced.enable_trace();
    assert_eq!(traced.save_state().unwrap_err(), StateError::TraceActive);

    let sim = serial_ring(false, false);
    let bytes = sim.save_state().unwrap();

    // Wrong node count.
    let mut small: Simulator<Token> = Simulator::new(SEED);
    small.add_node(Box::new(Relay { peer: 0, kick_off: 0 }));
    assert!(matches!(
        small.load_state(&bytes).unwrap_err(),
        StateError::NodeCountMismatch { expected: NODES, found: 1 }
    ));

    // Serial bytes into the sharded engine, and vice versa.
    let mut sharded = sharded_ring(2, false, false);
    assert_eq!(sharded.load_state(&bytes).unwrap_err(), StateError::EngineMismatch);
    let sharded_bytes = sharded.save_state().unwrap();
    let mut serial = serial_ring(false, false);
    assert_eq!(serial.load_state(&sharded_bytes).unwrap_err(), StateError::EngineMismatch);

    // Wrong shard count.
    let mut other = sharded_ring(3, false, false);
    assert!(matches!(
        other.load_state(&sharded_bytes).unwrap_err(),
        StateError::ShardCountMismatch { expected: 2, found: 3 }
    ));
}

#[test]
fn corrupt_engine_state_is_rejected_without_panic() {
    let mut sim = serial_ring(true, true);
    sim.run(RunLimits::until(SimTime(50_000)));
    let bytes = sim.save_state().unwrap();

    // Every strict prefix fails with a typed error.
    for cut in 0..bytes.len() {
        let mut target = serial_ring(false, false);
        let err = target.load_state(&bytes[..cut]).expect_err("truncation must fail");
        let _ = err.to_string();
    }
    // Trailing garbage fails.
    let mut extended = bytes.clone();
    extended.push(0);
    let mut target = serial_ring(false, false);
    assert!(target.load_state(&extended).is_err());

    // A failed load leaves the target untouched (still at t=0, still
    // able to run its own workload from scratch).
    let mut target = serial_ring(false, false);
    assert!(target.load_state(&bytes[..bytes.len() / 2]).is_err());
    assert_eq!(target.now(), SimTime::ZERO);
    target.run(RunLimits::none());
    let mut fresh = serial_ring(false, false);
    fresh.run(RunLimits::none());
    assert_eq!(target.stats(), fresh.stats());
}
