#!/usr/bin/env python3
"""Normalize a pvr-bench-v1 JSON document for determinism diffing.

The determinism gate runs the e14 scale experiment once per shard count
and asserts the outputs are byte-for-byte identical after stripping the
fields that are *allowed* to differ: wall-clock timings (machine noise)
and the shard count itself (the run's parameter, not its result). Every
other e14 metric — AS/edge/origin counts, event totals, peak RIB size,
bytes on the wire, O(1) short-circuits — must survive unchanged, or the
sharded engine has diverged from the serial one.

Usage: normalize_e14.py BENCH.json > normalized.json
"""

import json
import sys


def normalize(doc):
    assert doc.get("schema") == "pvr-bench-v1", f"unexpected schema {doc.get('schema')!r}"
    e14 = next((e for e in doc.get("experiments", []) if e.get("id") == "e14"), None)
    assert e14 is not None, "no e14 record in document"
    cells = e14.get("metrics")
    assert cells, "e14 record carries no metrics array"
    out = []
    for cell in cells:
        kept = {
            k: v
            for k, v in sorted(cell.items())
            if k not in ("shards", "wall_secs", "events_per_sec")
        }
        out.append(kept)
    # Sort by (scale, mode) so cell emission order can never mask or
    # fake a divergence.
    out.sort(key=lambda c: (c["scale"], c["mode"]))
    return out


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as fh:
        doc = json.load(fh)
    json.dump(normalize(doc), sys.stdout, indent=1, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
