#!/usr/bin/env python3
"""Normalize a pvr-bench-v1 JSON document for determinism diffing.

The determinism gate runs the scale experiments (e14, and e15 when
selected) once per shard count and asserts the outputs are
byte-for-byte identical after stripping the fields that are *allowed*
to differ:

- wall-clock timings (machine noise) and the shard count itself (the
  run's parameter, not its result);
- everything derived from `verify_cache_hits` — the workspace-wide
  carve-out: the sharded engine's per-shard verification caches see
  fewer hits than the serial engine's network-wide cache, by design;
- e18's checkpoint byte size — the checkpoint file's ENGINE section
  encodes per-engine scheduler state, so serial and sharded files for
  the same logical instant legitimately differ in size.

Every other metric — e14's AS/edge/origin counts, event totals, peak
RIB size, bytes on the wire, O(1) short-circuits; e15's metrics series
and convergence-timeline windows; e16's settle-time percentiles,
withdraw fan-out, dampening suppressions, fault counts, and the
degradation/deployment tables (all sim-time derived, no timing fields
at all); e17's baseline/private event counts, sim-time convergence,
sim-time privacy-overhead multiplier, batch occupancy, and the full
SMC bill (requests, batches, rounds, bits broadcast, modeled latency,
verdict tally); e18's convergence events, snapshot/checkpoint counts,
replayed events, `recovered_identical` verdict, the converged RIB's
SHA-256 (both e14's per-cell `final_rib_sha256` and e18's), and the
hijack-bisect forensic row — must survive unchanged, or the sharded
engine has diverged from the serial one.

Usage: normalize_e14.py BENCH.json > normalized.json
"""

import json
import sys


def is_hit_series(name):
    return "verify_cache_hit" in name


def normalize_e14(e14):
    cells = e14.get("metrics")
    assert cells, "e14 record carries no metrics array"
    out = []
    for cell in cells:
        kept = {
            k: v
            for k, v in sorted(cell.items())
            if k not in ("shards", "wall_secs", "events_per_sec")
        }
        out.append(kept)
    # Sort by (scale, mode) so cell emission order can never mask or
    # fake a divergence.
    out.sort(key=lambda c: (c["scale"], c["mode"]))
    return out


def normalize_e15(e15):
    series = e15.get("metrics")
    assert series, "e15 record carries no metrics array"
    windows = e15.get("timeline")
    assert windows is not None, "e15 record carries no timeline array"
    kept_series = [s for s in series if not is_hit_series(s["name"])]
    kept_windows = [
        {k: v for k, v in sorted(w.items()) if k != "verify_cache_hits"}
        for w in windows
    ]
    return {"metrics": kept_series, "timeline": kept_windows}


def normalize_e16(e16):
    metrics = e16.get("metrics")
    assert metrics, "e16 record carries no metrics object"
    # Every e16 field is sim-time derived: nothing to strip. Re-sorting
    # the keys is enough to make the diff format-stable.
    return {k: v for k, v in sorted(metrics.items())}


def normalize_e17(e17):
    rows = e17.get("metrics")
    assert rows, "e17 record carries no metrics array"
    out = []
    for row in rows:
        kept = {
            k: v
            for k, v in sorted(row.items())
            if k not in ("shards", "baseline_wall_secs", "private_wall_secs", "wall_overhead")
        }
        out.append(kept)
    out.sort(key=lambda r: r["scale"])
    return out


def normalize_e18(e18):
    m = e18.get("metrics")
    assert m, "e18 record carries no metrics object"
    timing = (
        "shards",
        "baseline_wall_secs",
        "checkpointed_wall_secs",
        "snapshot_overhead_pct",
        "checkpoint_write_secs",
        "write_mb_per_sec",
        "recovery_wall_secs",
        # Engine-local, not timing: the file's ENGINE section encodes
        # per-shard scheduler state, so its size differs by design.
        "last_checkpoint_bytes",
    )
    rows = [
        {k: v for k, v in sorted(r.items()) if k not in timing}
        for r in m["rows"]
    ]
    kept = {k: v for k, v in sorted(m.items()) if k != "rows"}
    kept["rows"] = rows
    return kept


def normalize(doc):
    assert doc.get("schema") == "pvr-bench-v1", f"unexpected schema {doc.get('schema')!r}"
    experiments = doc.get("experiments", [])
    e14 = next((e for e in experiments if e.get("id") == "e14"), None)
    assert e14 is not None, "no e14 record in document"
    out = {"e14": normalize_e14(e14)}
    e15 = next((e for e in experiments if e.get("id") == "e15"), None)
    if e15 is not None:
        out["e15"] = normalize_e15(e15)
    e16 = next((e for e in experiments if e.get("id") == "e16"), None)
    if e16 is not None:
        out["e16"] = normalize_e16(e16)
    e17 = next((e for e in experiments if e.get("id") == "e17"), None)
    if e17 is not None:
        out["e17"] = normalize_e17(e17)
    e18 = next((e for e in experiments if e.get("id") == "e18"), None)
    if e18 is not None:
        out["e18"] = normalize_e18(e18)
    return out


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as fh:
        doc = json.load(fh)
    json.dump(normalize(doc), sys.stdout, indent=1, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
