//! # PVR — Private and Verifiable Routing
//!
//! A full reproduction of *"Having Your Cake and Eating It Too: Routing
//! Security with Privacy Protections"* (Gurney, Haeberlen, Zhou, Sherr,
//! Loo — HotNets-X, 2011): a protocol that lets ISPs check whether their
//! neighbors fulfill contractual routing promises, and obtain evidence
//! of violations, **without disclosing information the routing protocol
//! does not already reveal**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`crypto`] — SHA-256, HMAC-DRBG, bignum/RSA, commitments, RST ring
//!   signatures, canonical wire encoding (all from scratch);
//! * [`mht`] — sparse Merkle hash trees with prefix-free labels and
//!   blinded siblings (§3.6), sequential trees for batching (§3.8),
//!   signed roots and equivocation evidence;
//! * [`netsim`] — the deterministic discrete-event network simulator;
//! * [`bgp`] — BGP-lite: RIBs, decision process, Gao–Rexford policies,
//!   partial transit, S-BGP attestations, topologies, workloads;
//! * [`rfg`] — route-flow graphs, the α access-control function, promise
//!   semantics and static checking (§2);
//! * [`core`] — the PVR protocol itself: bit-vector commitments,
//!   selective disclosure, verification, evidence, the third-party
//!   auditor, Byzantine adversaries, the confidentiality auditor, and
//!   the in-network protocol (§3);
//! * [`smc`] — the §3.1 strawmen: a real GMW execution plus calibrated
//!   cost models;
//! * [`attack`] — the adversarial campaign engine: hijack/leak/forgery
//!   strategies swept over placements and security modes on a
//!   deterministic parallel executor;
//! * [`store`] — the content-addressed copy-on-write persistent RIB
//!   store: O(1) snapshots, structural diffs, and integrity-checked
//!   dump/load under the crash-consistent checkpoint format;
//! * [`obs`] — the deterministic telemetry layer: metrics registry,
//!   sim-time tracing and event journals, convergence timelines, and
//!   Prometheus/JSON exposition.
//!
//! ## Quickstart
//!
//! ```
//! use pvr::core::{run_min_round, Figure1Bed, Misbehavior};
//!
//! // Figure 1: three providers advertise routes of lengths 2, 3, 4 to
//! // network A, which promised B the shortest.
//! let bed = Figure1Bed::build(&[2, 3, 4], 7);
//!
//! // Honest round: every check passes.
//! assert!(run_min_round(&bed, None).clean());
//!
//! // A exports a longer route instead: B detects it, gets evidence,
//! // and the third-party auditor convicts.
//! let report = run_min_round(&bed, Some(Misbehavior::ExportLonger));
//! assert!(report.detected() && report.convicted());
//! ```

pub use pvr_attack as attack;
pub use pvr_bgp as bgp;
pub use pvr_core as core;
pub use pvr_crypto as crypto;
pub use pvr_mht as mht;
pub use pvr_netsim as netsim;
pub use pvr_obs as obs;
pub use pvr_rfg as rfg;
pub use pvr_smc as smc;
pub use pvr_store as store;
