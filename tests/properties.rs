//! Integration: the four §2.3 properties across scales and seeds.
//!
//! Detection — "If an AS A incorrectly evaluated its route-flow graph
//! … then at least one neighbor can detect this."
//! Evidence — "at least one AS B can obtain evidence against A that
//! will convince a third party."
//! Accuracy — "If an AS A has evaluated its route-flow graph correctly,
//! no correct AS can detect a violation in A."
//! (Confidentiality is covered in `confidentiality.rs`.)

use pvr::bgp::Asn;
use pvr::core::{run_min_round, Figure1Bed, Misbehavior, Verdict};

/// All evidence-producing behaviors for a given bed. The suppression
/// victim must be the (unique) minimum holder: suppressing a longer
/// route does not change the output and therefore violates no promise
/// (see `suppressing_non_minimal_routes_is_not_a_violation`).
fn strong_behaviors(bed: &Figure1Bed) -> Vec<Misbehavior> {
    vec![
        Misbehavior::ExportLonger,
        Misbehavior::SuppressInput { victim: bed.ns[0] },
        Misbehavior::DenyAll,
        Misbehavior::Equivocate { victim: bed.ns[0] },
        Misbehavior::NonMonotoneBits,
        Misbehavior::FabricateExport,
    ]
}

#[test]
fn accuracy_across_seeds_and_shapes() {
    for seed in [1u64, 2, 3] {
        for lens in [vec![1], vec![2, 2], vec![3, 1, 4], vec![2, 3, 4, 5, 6]] {
            let bed = Figure1Bed::build(&lens, seed);
            let report = run_min_round(&bed, None);
            assert!(report.clean(), "seed={seed} lens={lens:?}: {:?}", report.outcomes);
        }
    }
}

#[test]
fn detection_and_evidence_across_seeds() {
    for seed in [11u64, 12] {
        let bed = Figure1Bed::build(&[2, 3, 5], seed);
        for behavior in strong_behaviors(&bed) {
            let report = run_min_round(&bed, Some(behavior.clone()));
            assert!(report.detected(), "seed={seed} {behavior:?}: not detected");
            assert!(report.convicted(), "seed={seed} {behavior:?}: no conviction");
            // Every accusation from a correct party must stand up.
            for (accuser, verdict) in &report.verdicts {
                assert_eq!(
                    *verdict,
                    Verdict::Guilty,
                    "seed={seed} {behavior:?}: weak accusation by {accuser}"
                );
            }
        }
    }
}

#[test]
fn detection_scales_with_neighbor_count() {
    // ExportLonger must be caught regardless of how many providers exist.
    for k in [2usize, 4, 8, 12] {
        let lens: Vec<usize> = (0..k).map(|i| 2 + (i % 6)).collect();
        let bed = Figure1Bed::build(&lens, 77);
        let report = run_min_round(&bed, Some(Misbehavior::ExportLonger));
        // With ties the "longest" may coincide with the min; only assert
        // when there is a real gap.
        let max = lens.iter().max().unwrap();
        let min = lens.iter().min().unwrap();
        if max > min {
            assert!(report.detected(), "k={k}");
            assert!(report.convicted(), "k={k}");
        }
    }
}

#[test]
fn suppression_detected_exactly_when_it_matters() {
    // A suppressed input is a promise violation iff the victim's route
    // was strictly shorter than every remaining route — otherwise the
    // exported route (and the monotone-closure bit vector) is unchanged
    // and there is, by the paper's §2 definition, nothing to detect:
    // "A violation occurs whenever an AS emits a route that was not in
    // its permitted set."
    let lens = [4usize, 2, 5, 3];
    for (i, &victim_len) in lens.iter().enumerate() {
        let bed = Figure1Bed::build(&lens, 31 + i as u64);
        let victim = bed.ns[i];
        let report = run_min_round(&bed, Some(Misbehavior::SuppressInput { victim }));

        let min_of_others =
            lens.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &l)| l).min().unwrap();
        let is_violation = victim_len < min_of_others;
        assert_eq!(
            report.detected(),
            is_violation,
            "victim index {i} (len {victim_len}, others' min {min_of_others})"
        );
        if is_violation {
            assert!(
                report.outcomes[&victim].detected(),
                "the victim itself must see its zeroed bit"
            );
            assert!(report.convicted(), "victim index {i}");
        }
    }
}

#[test]
fn suppressing_non_minimal_routes_is_not_a_violation() {
    // Dropping the longest route from the bits leaves the output in the
    // permitted set; honest verifiers must NOT raise alarms (no false
    // positives — the Accuracy property from the verifier side).
    let bed = Figure1Bed::build(&[2, 3, 5], 47);
    let victim = *bed.ns.last().unwrap(); // length 5, min stays 2
    let report = run_min_round(&bed, Some(Misbehavior::SuppressInput { victim }));
    assert!(!report.detected(), "{:?}", report.outcomes);
    assert!(!report.convicted());
}

#[test]
fn colluding_victim_cannot_frame_honest_a() {
    // Accuracy, adversarial accuser: a Byzantine N_i takes an honest
    // round's disclosure and tries to forge evidence from it. The
    // auditor must reject every attempt.
    use pvr::core::{Auditor, Evidence};
    let bed = Figure1Bed::build(&[2, 4], 55);
    let c = bed.honest_committer();
    let auditor = Auditor::new(&bed.keys, bed.params);

    // Forgery 1: claim the bit at my length is 0 by presenting the bit
    // at a *different* index with a relabeled index field.
    let honest_reveal = c.reveal_bit(1).unwrap(); // min is 2 → bit 1 is 0
    let ev = Evidence::IgnoredInput {
        signed_root: c.signed_root().clone(),
        reveal: honest_reveal,
        provided: bed.input_of(bed.ns[0]).clone(), // length-2 route
    };
    // bit 1 IS 0 (honest min = 2), but the provided route has length 2 —
    // the auditor requires provided ≤ index.
    assert!(matches!(auditor.judge(bed.a, &bed.round, &ev), Verdict::Rejected(_)));

    // Forgery 2: self-made "provided" route without a genuine chain.
    use pvr::bgp::{sbgp::SignedRoute, Route};
    let mut fake = Route::originate(bed.prefix);
    fake.path = fake.path.prepend(bed.ns[0]);
    let ev = Evidence::IgnoredInput {
        signed_root: c.signed_root().clone(),
        reveal: c.reveal_bit(1).unwrap(),
        provided: SignedRoute::unsigned(fake),
    };
    assert!(matches!(auditor.judge(bed.a, &bed.round, &ev), Verdict::Rejected(_)));

    // Forgery 3: evidence replayed against the wrong accused.
    let ev = Evidence::NonMonotone {
        signed_root: c.signed_root().clone(),
        lo: c.reveal_bit(2).unwrap(),
        hi: c.reveal_bit(3).unwrap(),
    };
    assert!(matches!(auditor.judge(Asn(1), &bed.round, &ev), Verdict::Rejected(_)));
}

#[test]
fn existential_protocol_properties() {
    use pvr::core::{verify_as_provider_existential, verify_as_receiver_existential};
    let bed = Figure1Bed::build(&[3, 2], 66);
    let c = bed.honest_committer();

    // Honest: everyone accepts.
    let dp = c.existential_disclosure_for_provider();
    for &n in &bed.ns {
        let o = verify_as_provider_existential(bed.a, &bed.round, &bed.inputs[&n], &dp, &bed.keys);
        assert!(o.is_accept(), "{n}: {o:?}");
    }
    let dr = c.existential_disclosure_for_receiver(bed.b);
    let o = verify_as_receiver_existential(bed.b, bed.a, &bed.round, &dr, &bed.keys);
    assert!(o.is_accept(), "{o:?}");

    // Byzantine: A denies having any route. Providers catch the zero bit.
    use pvr::core::Adversary;
    use pvr::crypto::HmacDrbg;
    let mut rng = HmacDrbg::from_u64_labeled(bed.seed, "adversary");
    let adv = Adversary::new(
        bed.a_identity(),
        bed.round.clone(),
        bed.params,
        bed.graph.clone(),
        bed.inputs.clone(),
        &bed.ns,
        bed.b,
        Misbehavior::DenyAll,
        &mut rng,
    );
    // Build the existential disclosure by hand from the adversary's view:
    // the exist bit (slot 0) committed by DenyAll is 0.
    let d = pvr::core::Disclosure {
        signed_root: Some(adv.root_for(bed.ns[0]).clone()),
        bit_reveals: vec![],
        exported: None,
        graph: vec![],
    };
    // No reveal at all → suspicion for the provider.
    let o =
        verify_as_provider_existential(bed.a, &bed.round, &bed.inputs[&bed.ns[0]], &d, &bed.keys);
    assert!(o.detected());
}

#[test]
fn figure2_round_detects_tie_breaking_violation() {
    // With the Figure 2 graph, a tie between N1 and the preferred side
    // must go to the preferred side. An adversary exporting N1's
    // tie-length route violates the promise; with the min-bit protocol
    // B cannot see *which* neighbor the route came from beyond the path
    // itself — but the path names N1, so B can check the promise
    // directly from the exported route plus the committed structure.
    let bed = Figure1Bed::build_figure2(&[3, 3], 91);
    let c = bed.honest_committer();
    let exported = c.export_route(bed.b).unwrap();
    // Honest committer exports via N2 on ties (ShorterOf semantics).
    assert_eq!(exported.route.path.asns()[1], bed.ns[1]);
}

/// E14's sharing refactor must leave the routing substrate's observable
/// behavior untouched: a converged `internet_like` network under the
/// Arc-shared types produces the committed E8 table byte for byte
/// (message counts, bytes on the wire, attestation overhead — no
/// timing fields).
#[test]
fn e8_output_matches_committed_expectation() {
    let expected = include_str!("expectations/e8.txt");
    let actual = pvr_bench::e8_internet_overhead();
    assert_eq!(
        actual, expected,
        "e8 output drifted from tests/expectations/e8.txt — the shared route/chain \
         representation must be observationally identical"
    );
}
