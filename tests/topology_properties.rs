//! Property tests for the `internet_like` topology generator: the
//! structural invariants every campaign and experiment silently relies
//! on — connectivity, no self-loops, and valley-free route propagation
//! under the Gao–Rexford roles the generator assigns.

use proptest::prelude::*;
use pvr::bgp::{internet_like, Asn, Edge, InstantiateOptions, InternetParams, Role, Topology};
use pvr::netsim::RunLimits;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// (local, neighbor) → the role `neighbor` plays relative to `local`.
fn role_map(t: &Topology) -> BTreeMap<(Asn, Asn), Role> {
    let mut map = BTreeMap::new();
    for local in t.ases() {
        for (neighbor, role) in t.neighbor_roles(local) {
            map.insert((local, neighbor), role);
        }
    }
    map
}

fn is_customer_role(role: &Role) -> bool {
    matches!(role, Role::Customer | Role::PartialTransitCustomer { .. })
}

/// Checks one received route for valley-freedom: every intermediate
/// hop's export must have been policy-legal given the roles, i.e. a
/// route learned from a peer or provider may only have been exported to
/// a customer.
fn path_is_valley_free(receiver: Asn, path: &[Asn], roles: &BTreeMap<(Asn, Asn), Role>) -> bool {
    let m = path.len();
    for i in 0..m.saturating_sub(1) {
        let exporter = path[i];
        let learned_from = path[i + 1];
        let target = if i == 0 { receiver } else { path[i - 1] };
        let src_role = match roles.get(&(exporter, learned_from)) {
            Some(r) => r,
            None => return false, // route claims a non-existent adjacency
        };
        let tgt_role = match roles.get(&(exporter, target)) {
            Some(r) => r,
            None => return false,
        };
        if !src_role.is_customer_learned() && !is_customer_role(tgt_role) {
            return false; // peer/provider-learned route exported uphill
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn internet_like_structural_invariants(
        seed in 0u64..10_000,
        tier1 in 2usize..4,
        tier2 in 2usize..6,
        stubs in 2usize..9,
    ) {
        let params = InternetParams { tier1, tier2, stubs, t2_peering_prob: 0.25, ..InternetParams::default() };
        let t = internet_like(params, seed);

        // Every declared AS class is present.
        prop_assert_eq!(t.as_count(), tier1 + tier2 + stubs);

        // No self-loops on any edge.
        let mut undirected: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        for e in t.edges() {
            let (a, b) = match *e {
                Edge::ProviderCustomer { provider, customer } => (provider, customer),
                Edge::Peering(a, b) => (a, b),
                Edge::PartialTransit { provider, customer, .. } => (provider, customer),
            };
            prop_assert_ne!(a, b, "self-loop edge");
            undirected.entry(a).or_default().push(b);
            undirected.entry(b).or_default().push(a);
        }

        // Connectivity: every AS reaches every other over the
        // relationship graph.
        let start = t.ases().next().expect("non-empty topology");
        let mut seen = BTreeSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(x) = queue.pop_front() {
            for &n in undirected.get(&x).into_iter().flatten() {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        prop_assert_eq!(seen.len(), t.as_count(), "topology is disconnected");

        // Every stub originates exactly one prefix and the origin table
        // covers it.
        let table = t.origin_table();
        prop_assert_eq!(table.len(), stubs);
    }

    #[test]
    fn internet_like_routes_are_valley_free(seed in 0u64..10_000) {
        let params = InternetParams { tier1: 2, tier2: 4, stubs: 6, t2_peering_prob: 0.3, ..InternetParams::default() };
        let t = internet_like(params, seed);
        let roles = role_map(&t);
        let mut net = t.instantiate(InstantiateOptions::default());
        net.converge(RunLimits::none());
        let mut checked = 0usize;
        for v in net.ases().collect::<Vec<_>>() {
            for (neighbor, _) in t.neighbor_roles(v) {
                for (_, route) in net.router(v).routes_from(neighbor) {
                    prop_assert!(
                        path_is_valley_free(v, route.path.asns(), &roles),
                        "valley route at {v} from {neighbor}: {:?}",
                        route.path
                    );
                    checked += 1;
                }
            }
        }
        prop_assert!(checked > 0, "no routes propagated at all");
    }
}
