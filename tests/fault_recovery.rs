//! The fault-injection layer's recovery contract: after every fault in
//! a schedule has fired and the network re-converges, RIB fingerprints
//! equal a never-faulted baseline's — on both engines. Teardowns flush
//! Adj-RIBs and flood withdraws, recoveries re-announce the full
//! Loc-RIB, and in-flight updates from torn sessions are discarded, so
//! no fault schedule may leak, lose, or fabricate routing state once it
//! ends. Exercised over random topologies and random fault schedules
//! (link flaps and session resets — the faults whose semantics promise
//! full recovery), with and without MRAI batching and route-flap
//! dampening in the path.

use proptest::prelude::*;
use pvr::bgp::{
    internet_like, Asn, BgpRouter, Candidate, DampeningPolicy, Edge, InstantiateOptions,
    InternetParams, Prefix, Topology,
};
use pvr::crypto::drbg::HmacDrbg;
use pvr::netsim::{Fault, FaultPlan, NodeId, RunLimits, SimDuration, SimTime, StopReason};

/// The converged Loc-RIB, fully materialized: every selected prefix with
/// its winning candidate (route attributes + learned-from neighbor).
fn rib_fingerprint(router: &BgpRouter) -> Vec<(Prefix, Candidate)> {
    router
        .selected_prefixes()
        .into_iter()
        .map(|p| (p, router.best_route(p).expect("selected prefix has a best route").clone()))
        .collect()
}

/// The two endpoints of a topology edge, whichever flavor.
fn endpoints(edge: &Edge) -> (Asn, Asn) {
    match *edge {
        Edge::ProviderCustomer { provider, customer } => (provider, customer),
        Edge::Peering(a, b) => (a, b),
        Edge::PartialTransit { provider, customer, .. } => (provider, customer),
    }
}

/// A seeded random fault schedule over real topology links: 1–4 faults,
/// each either a link flap burst or a session reset, all inside
/// [200 ms, 1.2 s]. Down windows always exceed the 10 ms link latency,
/// so every in-flight delivery from before a teardown lands inside the
/// down window (where the receiver discards it) — the precondition for
/// exact recovery.
fn random_fault_plan(topology: &Topology, node_of: &dyn Fn(Asn) -> NodeId, seed: u64) -> FaultPlan {
    let edges = topology.edges();
    let mut rng = HmacDrbg::from_u64_labeled(seed, "fault-recovery plan");
    let mut plan = FaultPlan::new();
    let faults = 1 + rng.below(4);
    for _ in 0..faults {
        let (a, b) = endpoints(&edges[rng.index(edges.len())]);
        let (na, nb) = (node_of(a), node_of(b));
        let start = SimTime::ZERO + SimDuration::from_millis(200 + rng.below(800));
        if rng.chance(0.5) {
            let down_for = SimDuration::from_millis(15 + rng.below(30));
            let count = 1 + rng.below(3) as usize;
            plan.flap_link(na, nb, start, down_for, SimDuration::from_millis(60), count);
        } else {
            plan.push(start, Fault::SessionReset { a: na, b: nb });
        }
    }
    plan
}

/// Converges `topology` three times — never-faulted serial baseline,
/// faulted serial, faulted sharded — and asserts both faulted runs
/// recover to exactly the baseline RIBs, and agree with each other on
/// every simulator counter.
fn assert_recovers_to_baseline(
    topology: &Topology,
    options: InstantiateOptions,
    shards: usize,
    fault_seed: u64,
) {
    let mut baseline_net = topology.instantiate(options);
    assert_eq!(baseline_net.converge(RunLimits::none()), StopReason::Quiescent);
    let baseline: Vec<(Asn, Vec<(Prefix, Candidate)>)> =
        topology.ases().map(|a| (a, rib_fingerprint(baseline_net.router(a)))).collect();
    drop(baseline_net);

    let mut serial = topology.instantiate(options);
    let plan = random_fault_plan(topology, &|a| serial.node_of(a), fault_seed);
    assert!(!plan.is_empty());
    serial.install_fault_plan(plan);
    assert_eq!(serial.converge(RunLimits::none()), StopReason::Quiescent);

    let mut sharded = topology.instantiate_sharded(options, shards);
    let plan = random_fault_plan(topology, &|a| sharded.node_of(a), fault_seed);
    sharded.install_fault_plan(plan);
    assert_eq!(sharded.converge(RunLimits::none()), StopReason::Quiescent);

    // The engines agree with each other on the whole faulted run...
    assert_eq!(
        serial.sim.stats(),
        sharded.sim.stats(),
        "faulted engines diverge at {shards} shards"
    );
    assert!(serial.sim.stats().link_down + serial.sim.stats().session_resets > 0);

    // ...and both recover to exactly the never-faulted state.
    for (asn, base) in &baseline {
        assert_eq!(
            &rib_fingerprint(serial.router(*asn)),
            base,
            "serial AS{} RIB != never-faulted baseline (fault seed {fault_seed})",
            asn.0
        );
        assert_eq!(
            &rib_fingerprint(sharded.router(*asn)),
            base,
            "sharded AS{} RIB != never-faulted baseline at {shards} shards",
            asn.0
        );
    }
}

fn small_internet(seed: u64) -> Topology {
    internet_like(
        InternetParams {
            tier1: 3,
            tier2: 6,
            stubs: 16,
            t2_peering_prob: 0.25,
            ..InternetParams::default()
        },
        seed,
    )
}

#[test]
fn recovery_equals_baseline_plain() {
    let topology = small_internet(81);
    let options = InstantiateOptions { seed: 81, ..Default::default() };
    assert_recovers_to_baseline(&topology, options, 3, 81);
}

#[test]
fn recovery_equals_baseline_signed() {
    let topology = small_internet(82);
    let options =
        InstantiateOptions { seed: 82, signed: true, key_bits: 512, ..Default::default() };
    assert_recovers_to_baseline(&topology, options, 4, 82);
}

#[test]
fn recovery_equals_baseline_with_mrai_and_dampening() {
    // The full failure-semantics stack in the path: jittered MRAI
    // batching delays the floods, dampening parks the fastest-flapped
    // routes until the reuse timer releases them — recovery must still
    // land on exactly the baseline.
    let topology = small_internet(83);
    let options = InstantiateOptions {
        seed: 83,
        mrai: Some(SimDuration::from_millis(5)),
        mrai_jitter: Some(SimDuration::from_millis(1)),
        dampening: Some(DampeningPolicy::default()),
        ..Default::default()
    };
    assert_recovers_to_baseline(&topology, options, 2, 83);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random topologies × random fault schedules × random shard
    /// counts: the recovery contract holds everywhere, with dampening
    /// in the path on odd seeds.
    #[test]
    fn random_fault_schedules_recover(
        seed in 0u64..10_000,
        tier1 in 2usize..=4,
        tier2 in 3usize..=8,
        stubs in 4usize..=16,
        shards in 2usize..=6,
    ) {
        let params = InternetParams {
            tier1,
            tier2,
            stubs,
            t2_peering_prob: 0.3,
            ..InternetParams::default()
        };
        let topology = internet_like(params, seed);
        let dampening =
            if seed % 2 == 1 { Some(DampeningPolicy::default()) } else { None };
        let options = InstantiateOptions { seed, dampening, ..Default::default() };
        assert_recovers_to_baseline(&topology, options, shards, seed);
    }
}
