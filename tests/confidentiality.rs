//! Integration: the §2.3 Confidentiality property (experiment E7).
//!
//! "No AS will learn information from running PVR that it could not
//! learn in the unsecured system, unless this was explicitly authorized
//! by α." Verified as counterfactual indistinguishability of redacted
//! views — see `pvr_core::confidential` for the methodology.

use pvr::bgp::Asn;
use pvr::core::confidential::{counterfactual_min_audit, redact};
use pvr::core::{run_min_round, Figure1Bed};

#[test]
fn e7_non_minimal_changes_are_invisible() {
    // Sweep: vary each non-minimal provider's length; nobody else's view
    // content may change.
    let base = [2usize, 4, 6, 8];
    for (i, &len) in base.iter().enumerate().skip(1) {
        for delta in [1usize, 3] {
            let mut other = base.to_vec();
            other[i] = len + delta;
            let outcome = counterfactual_min_audit(&base, &other, 7);
            let changed_provider = Asn(i as u32 + 1);
            assert!(
                outcome.confidential_except(&[changed_provider]),
                "lens {base:?} → {other:?}: {:?}",
                outcome.content_changed
            );
        }
    }
}

#[test]
fn e7_what_b_learns_is_exactly_the_min() {
    // Two worlds with the same minimum but totally different longer
    // routes must be indistinguishable to B.
    let outcome = counterfactual_min_audit(&[2, 9, 12, 5], &[2, 3, 4, 16], 13);
    assert!(!outcome.content_changed[&Asn(200)], "B distinguished equal-min worlds");
    // And two worlds with different minima are (legitimately)
    // distinguishable — via the route B receives anyway.
    let outcome = counterfactual_min_audit(&[2, 9], &[3, 9], 13);
    assert!(outcome.content_changed[&Asn(200)]);
}

#[test]
fn e7_provider_learns_only_its_own_bit() {
    // N2's bit at its own length stays 1 whether the minimum is 2, 3, or
    // its own 4: N2 cannot rank itself against the others.
    for lens in [[2usize, 4], [3, 4], [4, 4]] {
        let other = [[2usize, 4], [3, 4], [4, 4]].into_iter().find(|l| l != &lens).unwrap();
        let outcome = counterfactual_min_audit(&lens, &other, 21);
        assert!(!outcome.content_changed[&Asn(2)], "{lens:?} vs {other:?}: N2 distinguished");
    }
}

#[test]
fn e7_provider_counts_are_not_leaked_to_providers() {
    // N1's view with 2 providers vs 3 providers: N1's disclosure has the
    // same shape (root + its bit). The root hash differs (different
    // commitments) but the content must not.
    let bed2 = Figure1Bed::build(&[2, 5], 31);
    let bed3 = Figure1Bed::build(&[2, 5, 7], 31);
    let r2 = run_min_round(&bed2, None);
    let r3 = run_min_round(&bed3, None);
    let v2 = redact(&r2.transcripts[&Asn(1)]);
    let v3 = redact(&r3.transcripts[&Asn(1)]);
    // Opened bits identical: same index, same value.
    assert_eq!(v2.opened_bits, v3.opened_bits);
    assert_eq!(v2.exported_routes, v3.exported_routes);
    // (The gossip root count differs — with more neighbors there are
    // more gossip copies — but that is the neighbor set, which Figure 1
    // assumes "is known to each of the networks".)
}

#[test]
fn e7_bit_vector_is_a_function_of_the_minimum() {
    // Direct unit-level statement of why the construction is private:
    // the full vector B sees is determined by the min alone.
    use pvr::bgp::{AsPath, Prefix, Route};
    use pvr::core::min_bit_vector;
    let route = |len: usize| {
        let mut r = Route::originate(Prefix::parse("10.0.0.0/8").unwrap());
        r.path = AsPath::from_slice(&(0..len).map(|i| Asn(i as u32 + 1)).collect::<Vec<_>>());
        r
    };
    let w1 = [route(3), route(7), route(9)];
    let w2 = [route(3), route(4), route(15)];
    let v1 = min_bit_vector(&w1.iter().collect::<Vec<_>>(), 16);
    let v2 = min_bit_vector(&w2.iter().collect::<Vec<_>>(), 16);
    assert_eq!(v1, v2);
}

#[test]
fn e7_graph_disclosure_respects_alpha_exactly() {
    use pvr::core::VisibleGraph;
    use pvr::mht::Label;
    use pvr::rfg::{Access, AccessPolicy, VertexRef};

    let bed = Figure1Bed::build(&[2, 3], 41);
    let c = bed.honest_committer();
    // Custom α: B gets structure-only on the operator, nothing else.
    let mut alpha = AccessPolicy::new();
    let op = bed.graph.ops().next().unwrap().id;
    alpha.grant(bed.b, VertexRef::Op(op), Access::STRUCTURE);
    let reveals = c.graph_disclosure_for(bed.b, &alpha);
    assert_eq!(reveals.len(), 1, "exactly one vertex visible");
    let g = VisibleGraph::reconstruct(&reveals, &c.signed_root().root).unwrap();
    let v = g.vertex(&Label::Rule(op.0)).unwrap();
    assert!(v.preds.is_some() && v.succs.is_some());
    assert!(v.content.is_none(), "content was not authorized");
}
