//! The durability layer's recovery contract (ISSUE 10): kill a
//! converging run at an arbitrary checkpoint instant, restore from the
//! file, replay — and the recovered run is **byte-identical** to one
//! that never crashed. Asserted over RIB fingerprints, simulator
//! stats, and full metrics snapshots; over both engines at shard
//! counts 1/2/4/8; with and without churn schedules and fault plans in
//! the path. Plus the corrupt-checkpoint hardening: truncation, bit
//! flips, and version bumps anywhere in the file must surface as typed
//! errors — never a panic, never a partially-restored network.

use proptest::prelude::*;
use pvr::bgp::{
    internet_like, Asn, BgpNetwork, CheckpointError, DampeningPolicy, InstantiateOptions,
    InternetParams, LocalEvent, Malice, Prefix, ShardedBgpNetwork, Topology,
};
use pvr::crypto::drbg::HmacDrbg;
use pvr::netsim::{Fault, FaultPlan, RunLimits, SimDuration, SimTime, StopReason};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pvr-crash-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{tag}.pvr"))
}

fn small_internet(seed: u64) -> Topology {
    let mut topology = internet_like(
        InternetParams {
            tier1: 3,
            tier2: 5,
            stubs: 12,
            t2_peering_prob: 0.25,
            ..InternetParams::default()
        },
        seed,
    );
    // Churn in the path: a couple of scheduled flaps so the recovered
    // run has pending local events and MRAI state to get right.
    let ases: Vec<Asn> = topology.ases().collect();
    let flapper = ases[ases.len() / 2];
    let prefix = Prefix::parse("203.0.113.0/24").expect("parse");
    topology.originate(flapper, prefix);
    topology.schedule(flapper, SimDuration::from_millis(40), LocalEvent::Withdraw(prefix));
    topology.schedule(flapper, SimDuration::from_millis(90), LocalEvent::Announce(prefix));
    topology
}

fn fault_plan(net_node_of: &dyn Fn(Asn) -> usize, ases: &[Asn], seed: u64) -> FaultPlan {
    let mut rng = HmacDrbg::from_u64_labeled(seed, "crash-recovery faults");
    let mut plan = FaultPlan::new();
    let a = ases[rng.index(ases.len())];
    let b = ases[rng.index(ases.len())];
    if a != b {
        plan.push(
            SimTime::ZERO + SimDuration::from_millis(30 + rng.below(100)),
            Fault::SessionReset { a: net_node_of(a), b: net_node_of(b) },
        );
    }
    plan
}

/// One full kill-and-recover cycle on the serial engine: baseline run
/// vs. run-until-`kill_at` → checkpoint → drop ("crash") → restore →
/// replay. All three observables must match exactly.
fn assert_serial_recovery(topology: &Topology, options: InstantiateOptions, kill_at: SimTime) {
    let mut baseline = topology.instantiate(options);
    assert_eq!(baseline.converge(RunLimits::none()), StopReason::Quiescent);

    let path = temp_path(&format!("serial-{}-{}", options.seed, kill_at.as_micros()));
    let mut victim = topology.instantiate(options);
    victim.converge(RunLimits::until(kill_at));
    victim.checkpoint(&path).expect("checkpoint");
    drop(victim); // the crash

    let mut recovered = BgpNetwork::restore(&path).expect("restore");
    assert_eq!(recovered.converge(RunLimits::none()), StopReason::Quiescent);

    assert_eq!(
        recovered.rib_fingerprint(),
        baseline.rib_fingerprint(),
        "recovered RIBs diverge from the uninterrupted run (kill at {kill_at:?})"
    );
    assert_eq!(recovered.sim.stats(), baseline.sim.stats(), "SimStats diverge after recovery");
    assert_eq!(
        recovered.metrics_snapshot("plain"),
        baseline.metrics_snapshot("plain"),
        "metrics snapshots diverge after recovery"
    );
}

/// The sharded counterpart, at a given shard count. The recovered
/// sharded run must match both its own uninterrupted sharded baseline
/// (exactly) and the serial fingerprint (engine-invariantly).
fn assert_sharded_recovery(
    topology: &Topology,
    options: InstantiateOptions,
    shards: usize,
    kill_at: SimTime,
) {
    let mut serial = topology.instantiate(options);
    assert_eq!(serial.converge(RunLimits::none()), StopReason::Quiescent);

    let mut baseline = topology.instantiate_sharded(options, shards);
    assert_eq!(baseline.converge(RunLimits::none()), StopReason::Quiescent);

    let path = temp_path(&format!("sharded{shards}-{}-{}", options.seed, kill_at.as_micros()));
    let mut victim = topology.instantiate_sharded(options, shards);
    victim.converge(RunLimits::until(kill_at));
    victim.checkpoint(&path).expect("checkpoint");
    drop(victim);

    let mut recovered = ShardedBgpNetwork::restore(&path).expect("restore");
    assert_eq!(recovered.sim.shard_count(), shards, "restore must keep the shard shape");
    assert_eq!(recovered.converge(RunLimits::none()), StopReason::Quiescent);

    assert_eq!(
        recovered.rib_fingerprint(),
        baseline.rib_fingerprint(),
        "recovered sharded RIBs diverge from uninterrupted sharded run ({shards} shards)"
    );
    assert_eq!(recovered.sim.stats(), baseline.sim.stats());
    assert_eq!(recovered.metrics_snapshot("plain"), baseline.metrics_snapshot("plain"));
    // Engine-invariance survives the crash: the recovered sharded RIB
    // equals the serial one.
    assert_eq!(recovered.rib_fingerprint(), serial.rib_fingerprint());
}

#[test]
fn serial_kill_and_recover_plain() {
    let topology = small_internet(301);
    let options = InstantiateOptions { seed: 301, ..Default::default() };
    assert_serial_recovery(&topology, options, SimTime(60_000));
}

#[test]
fn serial_kill_and_recover_signed_with_mrai_dampening() {
    // The full dynamic-state surface in one run: attestation chains,
    // verify-cache verdicts, jittered MRAI timers, dampening penalties.
    let topology = small_internet(302);
    let options = InstantiateOptions {
        seed: 302,
        signed: true,
        key_bits: 512,
        mrai: Some(SimDuration::from_millis(5)),
        mrai_jitter: Some(SimDuration::from_millis(1)),
        dampening: Some(DampeningPolicy::default()),
        ..Default::default()
    };
    assert_serial_recovery(&topology, options, SimTime(55_000));
}

#[test]
fn serial_kill_and_recover_with_observability() {
    // Timelines and journals are run state too: a recovered run's
    // trace must cover the whole run, not the post-restore suffix.
    let topology = small_internet(303);
    let options = InstantiateOptions {
        seed: 303,
        timeline_window: Some(SimDuration::from_millis(5)),
        journal_capacity: 64,
        ..Default::default()
    };
    let mut baseline = topology.instantiate(options);
    assert_eq!(baseline.converge(RunLimits::none()), StopReason::Quiescent);

    let path = temp_path("serial-obs");
    let mut victim = topology.instantiate(options);
    victim.converge(RunLimits::until(SimTime(50_000)));
    victim.checkpoint(&path).expect("checkpoint");
    drop(victim);

    let mut recovered = BgpNetwork::restore(&path).expect("restore");
    assert_eq!(recovered.converge(RunLimits::none()), StopReason::Quiescent);
    assert_eq!(recovered.trace_jsonl(), baseline.trace_jsonl(), "journals diverge");
    assert_eq!(
        recovered.convergence_timeline(),
        baseline.convergence_timeline(),
        "timelines diverge"
    );
}

#[test]
fn sharded_kill_and_recover_across_shard_counts() {
    let topology = small_internet(304);
    let options = InstantiateOptions { seed: 304, ..Default::default() };
    for shards in [1, 2, 4, 8] {
        assert_sharded_recovery(&topology, options, shards, SimTime(60_000));
    }
}

#[test]
fn kill_and_recover_with_fault_plan_pending() {
    // Checkpoint lands *before* the scheduled faults fire: the
    // unapplied plan rides in the engine section and fires on replay.
    let topology = small_internet(305);
    let options = InstantiateOptions { seed: 305, ..Default::default() };
    let ases: Vec<Asn> = topology.ases().collect();

    let mut baseline = topology.instantiate(options);
    let plan = fault_plan(&|a| baseline.node_of(a), &ases, 305);
    assert!(!plan.is_empty());
    baseline.install_fault_plan(plan);
    assert_eq!(baseline.converge(RunLimits::none()), StopReason::Quiescent);

    let path = temp_path("serial-faults");
    let mut victim = topology.instantiate(options);
    let plan = fault_plan(&|a| victim.node_of(a), &ases, 305);
    victim.install_fault_plan(plan);
    victim.converge(RunLimits::until(SimTime(20_000)));
    victim.checkpoint(&path).expect("checkpoint");
    drop(victim);

    let mut recovered = BgpNetwork::restore(&path).expect("restore");
    assert_eq!(recovered.converge(RunLimits::none()), StopReason::Quiescent);
    assert_eq!(recovered.rib_fingerprint(), baseline.rib_fingerprint());
    assert_eq!(recovered.sim.stats(), baseline.sim.stats());
    assert!(recovered.sim.stats().session_resets > 0, "the pending fault must have fired");
}

#[test]
fn time_travel_queries_answer_from_history() {
    let mut topology = Topology::new();
    let (a, b, c) = (Asn(1), Asn(2), Asn(3));
    topology.provider_customer(a, b).provider_customer(b, c);
    let prefix = Prefix::parse("198.51.100.0/24").expect("parse");
    topology.originate(c, prefix);
    topology.schedule(c, SimDuration::from_millis(50), LocalEvent::Withdraw(prefix));

    let options = InstantiateOptions { seed: 7, ..Default::default() };
    let mut net = topology.instantiate(options);
    let reason = net.converge_with_snapshots(RunLimits::none(), SimDuration::from_millis(10));
    assert_eq!(reason, StopReason::Quiescent);

    let times = net.snapshot_times();
    assert!(times.len() >= 2, "expected several snapshots, got {times:?}");
    // While the route was up, A reached the prefix through B...
    let early = net.route_at(a, prefix, SimTime(40_000)).expect("route existed at 40 ms");
    assert_eq!(early.learned_from, Some(b));
    // ...and after the withdraw propagated, history says it vanished.
    let last = *times.last().expect("nonempty");
    assert_eq!(net.route_at(a, prefix, last), None, "route must be gone at quiescence");
}

#[test]
fn checkpoint_refuses_private_verification_and_malice() {
    let topology = small_internet(306);
    let pvr_options = InstantiateOptions {
        seed: 306,
        signed: true,
        key_bits: 512,
        private_verification: true,
        ..Default::default()
    };
    let mut net = topology.instantiate(pvr_options);
    let err = net.checkpoint(&temp_path("refused-pvr")).expect_err("PVR mode must refuse");
    assert!(matches!(err, CheckpointError::Refused(_)), "wrong error: {err:?}");

    let options = InstantiateOptions { seed: 306, ..Default::default() };
    let mut net = topology.instantiate(options);
    let victim = topology.ases().next().expect("nonempty");
    net.router_mut(victim).set_malice(Malice { leak_all: true });
    let err = net.checkpoint(&temp_path("refused-malice")).expect_err("malice must refuse");
    assert!(matches!(err, CheckpointError::Refused(_)), "wrong error: {err:?}");
}

#[test]
fn restore_reinstalls_the_origin_table() {
    let topology = small_internet(307);
    let options = InstantiateOptions { seed: 307, ..Default::default() };
    let mut net = topology.instantiate(options);
    net.install_origin_table(std::sync::Arc::new(topology.origin_table()));
    net.converge(RunLimits::until(SimTime(30_000)));
    let path = temp_path("origin-table");
    net.checkpoint(&path).expect("checkpoint");
    let baseline_fp = {
        assert_eq!(net.converge(RunLimits::none()), StopReason::Quiescent);
        net.rib_fingerprint()
    };
    drop(net);

    let mut recovered = BgpNetwork::restore(&path).expect("restore");
    // Spot-check the table is live again, then replay to equality.
    let any = topology.ases().next().expect("nonempty");
    assert_eq!(
        recovered.router(any).stats().origin_failures,
        0,
        "sanity: no rejections in a well-formed run"
    );
    assert_eq!(recovered.converge(RunLimits::none()), StopReason::Quiescent);
    assert_eq!(recovered.rib_fingerprint(), baseline_fp);
}

// ---------------------------------------------------------------------
// Corrupt-checkpoint hardening: no input may panic or half-apply.

/// A small converged checkpoint to mutilate.
fn checkpoint_bytes_fixture() -> Vec<u8> {
    let topology = small_internet(308);
    let options = InstantiateOptions { seed: 308, ..Default::default() };
    let path = temp_path("fixture");
    let mut net = topology.instantiate(options);
    net.converge(RunLimits::until(SimTime(40_000)));
    net.checkpoint(&path).expect("checkpoint");
    std::fs::read(&path).expect("read fixture")
}

fn restore_mutilated(bytes: Vec<u8>, tag: &str) -> Result<BgpNetwork, CheckpointError> {
    let path = temp_path(tag);
    std::fs::write(&path, bytes).expect("write mutilated");
    BgpNetwork::restore(&path)
}

/// `expect_err` without requiring `Debug` on the network type.
fn must_fail<T>(res: Result<T, CheckpointError>, what: &str) -> CheckpointError {
    match res {
        Ok(_) => panic!("{what}: restore unexpectedly succeeded"),
        Err(e) => e,
    }
}

#[test]
fn truncation_anywhere_is_a_typed_error() {
    let bytes = checkpoint_bytes_fixture();
    // Sweep truncation points across the whole file (step keeps the
    // test fast; includes 0 and the last byte).
    let mut cuts: Vec<usize> = (0..bytes.len()).step_by(997).collect();
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        let err = must_fail(
            restore_mutilated(bytes[..cut].to_vec(), &format!("trunc-{cut}")),
            "truncated checkpoint",
        );
        assert!(
            !matches!(err, CheckpointError::Io(_)),
            "truncation at {cut} must be a corruption error, got {err:?}"
        );
    }
}

#[test]
fn bit_flips_anywhere_are_typed_errors() {
    let bytes = checkpoint_bytes_fixture();
    let mut rng = HmacDrbg::from_u64_labeled(308, "bit flip fuzz");
    for i in 0..64 {
        let at = rng.index(bytes.len());
        let bit = 1u8 << rng.below(8);
        let mut bad = bytes.clone();
        bad[at] ^= bit;
        // Every section is hash-trailed, so any flip is either caught
        // by a section hash, the store's node hashes, or a decoder.
        if let Err(err) = restore_mutilated(bad, &format!("flip-{i}")) {
            assert!(!matches!(err, CheckpointError::Io(_)), "flip at {at} gave {err:?}");
        } else {
            // A flip in pure padding space cannot happen: the format
            // has no padding. Reaching here means a corrupted file
            // restored silently.
            panic!("bit flip at byte {at} (mask {bit:#x}) restored successfully");
        }
    }
}

#[test]
fn version_bump_is_rejected() {
    let mut bytes = checkpoint_bytes_fixture();
    // Header: 8 bytes magic ‖ 4 bytes LE version.
    bytes[8] = bytes[8].wrapping_add(1);
    let err = must_fail(restore_mutilated(bytes, "version-bump"), "future version");
    assert!(!matches!(err, CheckpointError::Io(_)), "got {err:?}");
}

#[test]
fn wrong_engine_kind_is_rejected() {
    let topology = small_internet(309);
    let options = InstantiateOptions { seed: 309, ..Default::default() };
    let path = temp_path("engine-mismatch");
    let mut net = topology.instantiate_sharded(options, 2);
    net.converge(RunLimits::until(SimTime(30_000)));
    net.checkpoint(&path).expect("checkpoint");
    let err = must_fail(BgpNetwork::restore(&path), "sharded file into serial restore");
    assert!(matches!(err, CheckpointError::State(_)), "got {err:?}");
    // The right engine still accepts it.
    ShardedBgpNetwork::restore(&path).expect("sharded restore");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random topologies × random kill instants × random shard counts:
    /// kill-and-recover equality holds everywhere, with dampening and
    /// signing in the path on alternating seeds.
    #[test]
    fn random_kills_recover_identically(
        seed in 0u64..10_000,
        tier2 in 3usize..=6,
        stubs in 4usize..=12,
        kill_ms in 10u64..150,
        shards in 1usize..=8,
    ) {
        let params = InternetParams {
            tier1: 2,
            tier2,
            stubs,
            t2_peering_prob: 0.3,
            ..InternetParams::default()
        };
        let topology = internet_like(params, seed);
        let options = InstantiateOptions {
            seed,
            signed: seed % 3 == 0,
            key_bits: 512,
            dampening: if seed % 2 == 1 { Some(DampeningPolicy::default()) } else { None },
            ..Default::default()
        };
        let kill_at = SimTime(kill_ms * 1000);
        if shards == 1 {
            assert_serial_recovery(&topology, options, kill_at);
        } else {
            assert_sharded_recovery(&topology, options, shards, kill_at);
        }
    }
}
