//! Integration: BGP substrate → PVR protocol, end to end.
//!
//! Converges a signed BGP network on the simulator, lifts the attested
//! routes out of a transit AS's Adj-RIB-In, runs a PVR round on them,
//! and checks the verification outcomes — the full pipeline the paper
//! envisions, with no hand-built inputs.

use pvr::bgp::{figure1, internet_like, Asn, InstantiateOptions, InternetParams, Topology};
use pvr::core::{verify_as_provider, verify_as_receiver, Committer, PvrParams, RoundContext};
use pvr::crypto::{HmacDrbg, Identity};
use pvr::netsim::RunLimits;
use pvr::rfg::figure1_graph;
use std::collections::BTreeMap;

/// Rebuilds the identity the topology instantiation generated for `asn`
/// (the generator is deterministic in the seed).
fn identity_of(topology: &Topology, seed: u64, key_bits: usize, asn: Asn) -> Identity {
    let mut rng = HmacDrbg::from_u64_labeled(seed, "bgp-identities");
    let mut found = None;
    for a in topology.ases() {
        let id = Identity::generate(a.principal(), key_bits, &mut rng);
        if a == asn {
            found = Some(id);
        }
    }
    found.expect("asn in topology")
}

#[test]
fn figure1_topology_feeds_pvr_round() {
    // BGP's figure1: chains of 0/1/2 intermediates behind N1..N3.
    let (topology, cast) = figure1(&[0, 1, 2]);
    let seed = 5;
    let mut net = topology.instantiate(InstantiateOptions {
        seed,
        signed: true,
        key_bits: 512,
        ..Default::default()
    });
    net.converge(RunLimits::none());

    // Lift A's Adj-RIB-In (with chains) into PVR inputs.
    let a_router = net.router(cast.a);
    let inputs: BTreeMap<Asn, Vec<_>> = cast
        .ns
        .iter()
        .map(|&n| {
            let sr = a_router.received_chain(n, cast.prefix).expect("route from provider").clone();
            (n, vec![sr])
        })
        .collect();
    // Path lengths as built: chain + 2.
    for (i, &n) in cast.ns.iter().enumerate() {
        assert_eq!(inputs[&n][0].route.path_len(), i + 2);
    }

    // Run the PVR round with B as receiver.
    let keys = net.keystore().unwrap().clone();
    let a_identity = identity_of(&topology, seed, 512, cast.a);
    let (graph, _, _, _) = figure1_graph(&cast.ns, cast.b);
    let round = RoundContext { prefix: cast.prefix, epoch: 1 };
    let params = PvrParams::default();
    let mut rng = HmacDrbg::from_u64_labeled(seed, "integration-round");
    let committer = Committer::new(
        &a_identity,
        round.clone(),
        params,
        graph,
        inputs.clone(),
        &cast.ns,
        &mut rng,
    );

    for &n in &cast.ns {
        let d = committer.disclosure_for_provider(n);
        let o = verify_as_provider(cast.a, &round, &params, &inputs[&n], &d, &keys);
        assert!(o.is_accept(), "{n}: {o:?}");
    }
    let d = committer.disclosure_for_receiver(cast.b);
    let o = verify_as_receiver(cast.b, cast.a, &round, &params, &d, &keys);
    assert!(o.is_accept(), "{o:?}");

    // The exported route in the disclosure matches what A actually
    // advertised to B over BGP.
    let exported = d.exported.unwrap();
    let advertised = net.router(cast.a).advertised_to(cast.b, cast.prefix).unwrap();
    assert_eq!(exported.route.path, advertised.path);
}

#[test]
fn internet_like_rib_passes_pvr() {
    // Same pipeline on an Internet-like topology: every multi-provider
    // (prefix, AS) pair we can find must produce a clean PVR round.
    let params = InternetParams {
        tier1: 3,
        tier2: 6,
        stubs: 10,
        t2_peering_prob: 0.3,
        ..InternetParams::default()
    };
    let topology = internet_like(params, 17);
    let seed = 17;
    let mut net = topology.instantiate(InstantiateOptions {
        seed,
        signed: true,
        key_bits: 512,
        ..Default::default()
    });
    net.converge(RunLimits::none());
    let keys = net.keystore().unwrap().clone();

    let mut rounds_checked = 0;
    for a in topology.ases().collect::<Vec<_>>() {
        if rounds_checked >= 3 {
            break;
        }
        let router = net.router(a);
        for prefix in router.selected_prefixes() {
            let providers: Vec<Asn> = topology
                .neighbor_roles(a)
                .into_iter()
                .filter(|(n, _)| router.received_chain(*n, prefix).is_some())
                .map(|(n, _)| n)
                .collect();
            if providers.len() < 2 {
                continue;
            }
            let inputs: BTreeMap<Asn, Vec<_>> = providers
                .iter()
                .map(|&n| (n, vec![router.received_chain(n, prefix).unwrap().clone()]))
                .collect();
            let a_identity = identity_of(&topology, seed, 512, a);
            let b = Asn(60000); // synthetic receiver for the promise
            let (graph, _, _, _) = figure1_graph(&providers, b);
            let round = RoundContext { prefix, epoch: 1 };
            let pvr_params = PvrParams { max_path_len: 16 };
            let mut rng = HmacDrbg::from_u64_labeled(seed + rounds_checked, "net-round");
            let committer = Committer::new(
                &a_identity,
                round.clone(),
                pvr_params,
                graph,
                inputs.clone(),
                &providers,
                &mut rng,
            );
            for &n in &providers {
                let d = committer.disclosure_for_provider(n);
                let o = verify_as_provider(a, &round, &pvr_params, &inputs[&n], &d, &keys);
                assert!(o.is_accept(), "AS{} prefix {prefix} provider {n}: {o:?}", a.0);
            }
            let d = committer.disclosure_for_receiver(b);
            let o = verify_as_receiver(b, a, &round, &pvr_params, &d, &keys);
            assert!(o.is_accept(), "AS{} prefix {prefix} receiver: {o:?}", a.0);
            rounds_checked += 1;
            break;
        }
    }
    assert!(rounds_checked >= 1, "no multi-provider decision found to check");
}

#[test]
fn partial_transit_policy_flows_correct_routes() {
    // The paper's motivating partial-transit contract: A sells B transit
    // limited to EU-peer routes. Verify the substrate enforces it before
    // PVR even enters the picture.
    use pvr::bgp::Community;
    let eu = Community(65000, 1);
    let a = Asn(100);
    let b = Asn(200);
    let eu_peer = Asn(1);
    let us_peer = Asn(2);
    let eu_origin = Asn(11);
    let us_origin = Asn(22);
    let eu_prefix = pvr::bgp::Prefix::parse("10.1.0.0/16").unwrap();
    let us_prefix = pvr::bgp::Prefix::parse("10.2.0.0/16").unwrap();

    let mut t = Topology::new();
    t.peering(a, eu_peer)
        .peering(a, us_peer)
        .provider_customer(eu_peer, eu_origin)
        .provider_customer(us_peer, us_origin)
        .partial_transit(a, b, eu)
        .tag_region(a, eu_peer, eu)
        .originate(eu_origin, eu_prefix)
        .originate(us_origin, us_prefix);

    let mut net = t.instantiate(InstantiateOptions::default());
    net.converge(RunLimits::none());

    // B received the EU route but not the US route.
    let b_router = net.router(b);
    assert!(b_router.route_from(a, eu_prefix).is_some(), "EU route must flow");
    assert!(b_router.route_from(a, us_prefix).is_none(), "US route must not flow");
}
