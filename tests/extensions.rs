//! Integration: the extension features working together — the policy
//! DSL (§4's language challenge), the promise-3/ε and promise-4
//! protocols, multi-epoch sessions, and MRAI-damped substrates feeding
//! PVR rounds.

use pvr::bgp::Asn;
use pvr::core::{
    verify_as_receiver, verify_as_receiver_with_epsilon, Committer, EpochTracker, Figure1Bed,
    Freshness, PvrParams, PvrSession, RoundContext,
};
use pvr::crypto::HmacDrbg;
use pvr::rfg::{compile_policy, Promise};
use std::collections::{BTreeMap, BTreeSet};

#[test]
fn dsl_compiled_graph_drives_a_full_verified_round() {
    // Write the Figure 1 promise as a program, commit over the compiled
    // graph, and run receiver verification — the whole pipeline from
    // policy text to cryptographic check.
    let program = "\
input r1 from AS1
input r2 from AS2
input r3 from AS3
output min(r1, r2, r3) to AS200
";
    let policy = compile_policy(program).unwrap();
    let bed = Figure1Bed::build(&[3, 2, 4], 501);
    let mut rng = HmacDrbg::from_u64_labeled(501, "dsl-round");
    let committer = Committer::new(
        bed.a_identity(),
        RoundContext { prefix: bed.prefix, epoch: 1 },
        PvrParams::default(),
        policy.graph,
        bed.inputs.clone(),
        &bed.ns,
        &mut rng,
    );
    let d = committer.disclosure_for_receiver(bed.b);
    let o = verify_as_receiver(bed.b, bed.a, &bed.round, &bed.params, &d, &bed.keys);
    assert!(o.is_accept(), "{o:?}");
    // The exported route is the true min (length 2 via N2, +1 prepend).
    assert_eq!(d.exported.unwrap().route.path_len(), 3);
}

#[test]
fn dsl_promise_and_static_checker_agree() {
    // For each program, the compiled graph and the Promise checker must
    // agree on what it implements.
    let subset: BTreeSet<Asn> = [Asn(1), Asn(2)].into();
    let cases: Vec<(&str, Promise, bool)> = vec![
        (
            "input r1 from AS1\ninput r2 from AS2\noutput min(r1, r2) to AS200\n",
            Promise::ShortestOfSubset { subset: subset.clone() },
            true,
        ),
        (
            "input r1 from AS1\ninput r2 from AS2\noutput exists(r1, r2) to AS200\n",
            Promise::Existential { subset: subset.clone() },
            true,
        ),
        (
            // min over a strict subset does not implement
            // shortest-overall.
            "input r1 from AS1\ninput r2 from AS2\noutput min(r1) to AS200\n",
            Promise::ShortestOverall,
            false,
        ),
    ];
    for (program, promise, expect) in cases {
        let policy = compile_policy(program).unwrap();
        assert_eq!(promise.implemented_by(&policy.graph, Asn(200)), expect, "{program}");
    }
}

#[test]
fn epsilon_promise_interoperates_with_sessions() {
    // A session whose receiver tolerates ε=1: an export one hop above
    // the minimum passes, two hops fails — across epochs.
    let bed = Figure1Bed::build(&[2, 3, 4], 502);
    let mut session =
        PvrSession::new(bed.a_identity(), bed.prefix, bed.params, bed.graph.clone(), &bed.ns, 502);
    let c = session.next_round(bed.inputs.clone());
    let round = c.round().clone();

    // Honest export (min = 2) passes at any ε.
    let d = c.disclosure_for_receiver(bed.b);
    for eps in [0usize, 1, 3] {
        let o =
            verify_as_receiver_with_epsilon(bed.b, bed.a, &round, &bed.params, eps, &d, &bed.keys);
        assert!(o.is_accept(), "ε={eps}");
    }

    // Doctored export via the length-3 provider: fails ε=0, passes ε=1.
    let n2 = bed.ns[1];
    let received = bed.input_of(n2);
    let out = received.route.clone().propagated_by(bed.a);
    let doctored = pvr::bgp::sbgp::SignedRoute::extend(received, bed.a_identity(), out, bed.b);
    let mut d2 = d.clone();
    d2.exported = Some(doctored);
    let strict =
        verify_as_receiver_with_epsilon(bed.b, bed.a, &round, &bed.params, 0, &d2, &bed.keys);
    assert!(!strict.is_accept());
    let relaxed =
        verify_as_receiver_with_epsilon(bed.b, bed.a, &round, &bed.params, 1, &d2, &bed.keys);
    assert!(relaxed.is_accept());
}

#[test]
fn epoch_tracker_guards_a_session_stream() {
    let bed = Figure1Bed::build(&[2, 3], 503);
    let mut session =
        PvrSession::new(bed.a_identity(), bed.prefix, bed.params, bed.graph.clone(), &bed.ns, 503);
    let mut tracker = EpochTracker::new();
    let mut roots = Vec::new();
    for _ in 0..3 {
        let c = session.next_round(bed.inputs.clone());
        roots.push(c.signed_root().clone());
    }
    assert_eq!(tracker.observe(&roots[0]), Freshness::Fresh);
    assert_eq!(tracker.observe(&roots[2]), Freshness::Fresh); // skip ahead ok
    assert_eq!(tracker.observe(&roots[1]), Freshness::Stale); // replay rejected
    assert_eq!(tracker.observe(&roots[2]), Freshness::Current);
}

#[test]
fn mrai_damped_substrate_still_feeds_clean_pvr_rounds() {
    // Converge a signed, MRAI-damped network, then run a PVR round from
    // the resulting RIB — batching must not corrupt attestation chains.
    use pvr::bgp::{figure1, InstantiateOptions};
    use pvr::core::verify_as_provider;
    use pvr::netsim::{RunLimits, SimDuration};
    use pvr::rfg::figure1_graph;

    let (topology, cast) = figure1(&[0, 1]);
    let mut net = topology.instantiate(InstantiateOptions {
        seed: 9,
        signed: true,
        key_bits: 512,
        mrai: Some(SimDuration::from_millis(50)),
        ..Default::default()
    });
    net.converge(RunLimits::none());

    let a_router = net.router(cast.a);
    let inputs: BTreeMap<Asn, Vec<_>> = cast
        .ns
        .iter()
        .map(|&n| (n, vec![a_router.received_chain(n, cast.prefix).unwrap().clone()]))
        .collect();

    // Rebuild A's identity deterministically (same stream as the
    // instantiation).
    let mut idrng = HmacDrbg::from_u64_labeled(9, "bgp-identities");
    let mut a_identity = None;
    for asn in topology.ases() {
        let id = pvr::crypto::Identity::generate(asn.principal(), 512, &mut idrng);
        if asn == cast.a {
            a_identity = Some(id);
        }
    }
    let a_identity = a_identity.unwrap();
    let keys = net.keystore().unwrap().clone();

    let (graph, _, _, _) = figure1_graph(&cast.ns, cast.b);
    let round = RoundContext { prefix: cast.prefix, epoch: 1 };
    let params = PvrParams::default();
    let mut rng = HmacDrbg::from_u64_labeled(9, "mrai-round");
    let committer = Committer::new(
        &a_identity,
        round.clone(),
        params,
        graph,
        inputs.clone(),
        &cast.ns,
        &mut rng,
    );
    for &n in &cast.ns {
        let d = committer.disclosure_for_provider(n);
        let o = verify_as_provider(cast.a, &round, &params, &inputs[&n], &d, &keys);
        assert!(o.is_accept(), "{n}: {o:?}");
    }
    let d = committer.disclosure_for_receiver(cast.b);
    let o = verify_as_receiver(cast.b, cast.a, &round, &params, &d, &keys);
    assert!(o.is_accept(), "{o:?}");
}
