//! Detection-matrix completeness: every `Misbehavior` variant yields a
//! non-OK result from the appropriate verifier.
//!
//! `Misbehavior::catalog` is guarded by a compile-time exhaustiveness
//! check, so adding a new Byzantine strategy without extending the
//! catalog breaks the build — and this test then guarantees the new
//! variant cannot silently go undetected.
//!
//! Also pins the attestation-chain fixtures against the network-wide
//! `VerifyCache`: a performance cache must never change an
//! accept/reject verdict, in any call order.

use pvr::bgp::{demo_chain, AsPath, Asn, Prefix, SbgpError, SignedRoute, VerifyCache};
use pvr::core::{run_min_round, Figure1Bed, Misbehavior, Verdict};
use pvr::crypto::KeyStore;

#[test]
fn every_misbehavior_variant_is_detected() {
    // ns[0] holds the unique minimum, so victim-targeted variants are
    // genuine promise violations.
    for seed in [21u64, 22] {
        let bed = Figure1Bed::build(&[2, 4, 5], seed);
        let victim = bed.ns[0];
        for behavior in Misbehavior::catalog(victim) {
            let report = run_min_round(&bed, Some(behavior.clone()));
            assert!(
                report.detected(),
                "seed={seed} {behavior:?}: no verifier produced a non-OK outcome"
            );
            match behavior {
                // Omission faults are detected as suspicion only: the
                // victim cannot transfer "I received nothing" to a third
                // party, so no conviction is expected (§2.3 Evidence
                // covers commission faults).
                Misbehavior::RefuseReveal { .. } | Misbehavior::CorruptOpening { .. } => {
                    assert!(!report.convicted(), "seed={seed} {behavior:?}");
                }
                // Commission faults must convict, and every accusation
                // from a correct party must stand up before the auditor.
                _ => {
                    assert!(report.convicted(), "seed={seed} {behavior:?}: no conviction");
                    for (accuser, verdict) in &report.verdicts {
                        assert_eq!(
                            *verdict,
                            Verdict::Guilty,
                            "seed={seed} {behavior:?}: weak accusation by {accuser}"
                        );
                    }
                }
            }
        }
    }
}

/// The genuine 3-hop chain AS1 → AS2 → AS3 (receiver AS4) plus the key
/// store — the shared `pvr::bgp::demo_chain` fixture, mirroring the
/// forged/truncated `sbgp` unit-test fixtures at integration level.
fn chain_fixture() -> (SignedRoute, KeyStore, Asn) {
    demo_chain(3, 512, b"detection-matrix chains")
}

/// The verification cache must never flip a verdict: every
/// forged/truncated-chain fixture must produce identical results
/// uncached, through a cold cache, and through a cache warmed by the
/// *genuine* chain (the adversarial aliasing case — same signed bytes,
/// different signature).
#[test]
fn verify_cache_never_changes_verdicts() {
    let (genuine, keys, receiver) = chain_fixture();

    let truncated = {
        // Path-shortening attack: AS3 strips AS2.
        let mut c = genuine.clone();
        c.route.path = AsPath::from_slice(&[Asn(3), Asn(1)]);
        c
    };
    let forged_sig = {
        // Same signed bytes as the genuine origin attestation, bogus
        // signature — the cache key must distinguish them.
        let mut atts = genuine.chain().to_vec();
        atts[0].signature.0[7] ^= 0x40;
        pvr::bgp::SignedRoute::with_chain(
            genuine.route.clone(),
            pvr::bgp::AttestationChain::from_attestations(atts),
        )
    };
    let wrong_prefix = {
        let mut c = genuine.clone();
        c.route.prefix = Prefix::parse("192.168.0.0/16").unwrap();
        c
    };
    let fixtures: Vec<(&str, &SignedRoute)> = vec![
        ("genuine", &genuine),
        ("truncated", &truncated),
        ("forged-signature", &forged_sig),
        ("wrong-prefix", &wrong_prefix),
    ];

    // Warm the shared cache with the genuine chain first, then replay
    // every fixture (and the cut-and-paste wrong-receiver case) in
    // both orders against fresh and warm caches.
    let warm = VerifyCache::new();
    assert!(genuine.verify_cached(receiver, &keys, Some(&warm)).is_ok());
    for (name, chain) in &fixtures {
        let uncached = chain.verify(receiver, &keys);
        let cold_cache = VerifyCache::new();
        let cold = chain.verify_cached(receiver, &keys, Some(&cold_cache));
        let warmed = chain.verify_cached(receiver, &keys, Some(&warm));
        assert_eq!(uncached, cold, "{name}: cold cache changed the verdict");
        assert_eq!(uncached, warmed, "{name}: warm cache changed the verdict");
        // And replaying through the same cache (now holding this
        // fixture's own verdicts) still agrees.
        assert_eq!(uncached, chain.verify_cached(receiver, &keys, Some(&warm)), "{name}: replay");
    }
    assert_eq!(genuine.verify(receiver, &keys), Ok(()));
    assert!(matches!(truncated.verify(receiver, &keys), Err(SbgpError::ChainLength { .. })));
    assert_eq!(forged_sig.verify(receiver, &keys), Err(SbgpError::BadSignature(Asn(1))));
    assert!(wrong_prefix.verify(receiver, &keys).is_err());
    // Cut-and-paste: replaying toward the wrong receiver, with a cache
    // already holding `true` for every genuine signature.
    assert!(matches!(
        genuine.verify_cached(Asn(9), &keys, Some(&warm)),
        Err(SbgpError::WrongTarget { .. })
    ));
    assert!(warm.hits() > 0, "warm cache must actually have been consulted");
}

#[test]
fn catalog_is_labeled_distinctly() {
    let victim = pvr::bgp::Asn(1);
    let catalog = Misbehavior::catalog(victim);
    assert_eq!(catalog.len(), 8, "catalog must cover all variants");
    let mut labels: Vec<&str> = catalog.iter().map(|m| m.label()).collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), catalog.len(), "labels must be unique");
}
