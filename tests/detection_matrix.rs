//! Detection-matrix completeness: every `Misbehavior` variant yields a
//! non-OK result from the appropriate verifier.
//!
//! `Misbehavior::catalog` is guarded by a compile-time exhaustiveness
//! check, so adding a new Byzantine strategy without extending the
//! catalog breaks the build — and this test then guarantees the new
//! variant cannot silently go undetected.

use pvr::core::{run_min_round, Figure1Bed, Misbehavior, Verdict};

#[test]
fn every_misbehavior_variant_is_detected() {
    // ns[0] holds the unique minimum, so victim-targeted variants are
    // genuine promise violations.
    for seed in [21u64, 22] {
        let bed = Figure1Bed::build(&[2, 4, 5], seed);
        let victim = bed.ns[0];
        for behavior in Misbehavior::catalog(victim) {
            let report = run_min_round(&bed, Some(behavior.clone()));
            assert!(
                report.detected(),
                "seed={seed} {behavior:?}: no verifier produced a non-OK outcome"
            );
            match behavior {
                // Omission faults are detected as suspicion only: the
                // victim cannot transfer "I received nothing" to a third
                // party, so no conviction is expected (§2.3 Evidence
                // covers commission faults).
                Misbehavior::RefuseReveal { .. } | Misbehavior::CorruptOpening { .. } => {
                    assert!(!report.convicted(), "seed={seed} {behavior:?}");
                }
                // Commission faults must convict, and every accusation
                // from a correct party must stand up before the auditor.
                _ => {
                    assert!(report.convicted(), "seed={seed} {behavior:?}: no conviction");
                    for (accuser, verdict) in &report.verdicts {
                        assert_eq!(
                            *verdict,
                            Verdict::Guilty,
                            "seed={seed} {behavior:?}: weak accusation by {accuser}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn catalog_is_labeled_distinctly() {
    let victim = pvr::bgp::Asn(1);
    let catalog = Misbehavior::catalog(victim);
    assert_eq!(catalog.len(), 8, "catalog must cover all variants");
    let mut labels: Vec<&str> = catalog.iter().map(|m| m.label()).collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), catalog.len(), "labels must be unique");
}
