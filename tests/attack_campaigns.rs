//! Integration: the E12 campaign engine's headline claims.
//!
//! These are the acceptance criteria for the attack subsystem: plain
//! BGP is poisoned by every hijack-family strategy, signed BGP still
//! misses route leaks and promise violations, PVR detects all of the
//! attestation/promise/protocol attacks plus the leak, and the parallel
//! sweep is bit-deterministic.

use pvr::attack::{leak_gossip_audit, AttackKind, Campaign, CampaignConfig, SecurityMode};
use pvr::bgp::{internet_like, InstantiateOptions, InternetParams};
use pvr::netsim::RunLimits;

#[test]
fn campaign_matrix_invariants() {
    let campaign = Campaign::new(CampaignConfig::quick(12));
    let report = campaign.run();

    let hijack_like = [AttackKind::Hijack, AttackKind::Attestation, AttackKind::Leak];
    // Plain BGP: every routing-plane attack moves traffic, nobody notices.
    assert!(
        report.min_poisoned(&hijack_like, SecurityMode::Plain) > 0.0,
        "some hijack-family strategy failed to poison plain BGP:\n{}",
        report.render_matrix()
    );
    assert_eq!(report.detection_rate(&hijack_like, SecurityMode::Plain), 0.0);

    // Signed BGP: hijacks and chain forgeries are blocked outright…
    for kind in [AttackKind::Hijack, AttackKind::Attestation] {
        for cell in report.cells.iter().filter(|c| c.kind == kind) {
            if cell.mode != SecurityMode::Plain {
                assert!(
                    cell.outcome.blocked,
                    "{} not blocked under {:?}",
                    cell.strategy, cell.mode
                );
                assert!(cell.outcome.detected);
                assert!(
                    cell.outcome.detection_time.is_some(),
                    "{}: substrate detection must be timestamped",
                    cell.strategy
                );
            }
        }
    }
    // …but the route leak sails through signed infrastructure unseen.
    assert!(report.min_poisoned(&[AttackKind::Leak], SecurityMode::Signed) > 0.0);
    assert_eq!(report.detection_rate(&[AttackKind::Leak], SecurityMode::Signed), 0.0);

    // PVR: 100% detection of attestation, promise, and protocol attacks,
    // and the gossip audit catches the leak.
    let verifiable = [AttackKind::Attestation, AttackKind::Promise, AttackKind::Protocol];
    assert_eq!(
        report.detection_rate(&verifiable, SecurityMode::Pvr),
        1.0,
        "pvr must detect every attestation/promise/protocol attack:\n{}",
        report.render_matrix()
    );
    assert_eq!(report.detection_rate(&[AttackKind::Leak], SecurityMode::Pvr), 1.0);

    // Promise/protocol attacks live below the routing plane: no
    // poisoning footprint in any mode.
    for cell in &report.cells {
        if matches!(cell.kind, AttackKind::Promise | AttackKind::Protocol) {
            assert_eq!(cell.outcome.poisoned_fraction, 0.0, "{}", cell.strategy);
        }
    }

    // Chain verification runs through the network-wide cache in every
    // signed-mode cell: multi-hop propagation re-checks prefix-suffix
    // attestations, so the hit rate is structurally nonzero.
    for mode in [SecurityMode::Signed, SecurityMode::Pvr] {
        let (calls, hits) = report.verification_totals(mode);
        assert!(calls > 0, "{mode:?}: no attestation checks recorded");
        assert!(hits > 0, "{mode:?}: chain-verify cache never hit");
        assert!(hits < calls, "{mode:?}: first-sight checks cannot be hits");
    }
    assert_eq!(report.verification_totals(SecurityMode::Plain), (0, 0));
}

#[test]
fn parallel_sweep_is_bit_deterministic() {
    // Plain-only keeps this cheap (no key generation); determinism is a
    // property of the executor, not of the cells' cost.
    let base = CampaignConfig {
        modes: vec![SecurityMode::Plain],
        parallelism: 1,
        ..CampaignConfig::quick(7)
    };
    let serial = Campaign::new(base.clone()).run();
    for threads in [2usize, 5] {
        let parallel = Campaign::new(CampaignConfig { parallelism: threads, ..base.clone() }).run();
        assert_eq!(serial, parallel, "threads={threads}");
        assert_eq!(serial.render_matrix(), parallel.render_matrix(), "threads={threads}");
    }
}

#[test]
fn leak_audit_is_silent_on_honest_networks() {
    // Accuracy for the gossip audit: a converged valley-free network
    // must produce zero leak evidence against any AS.
    let params = InternetParams {
        tier1: 2,
        tier2: 4,
        stubs: 6,
        t2_peering_prob: 0.3,
        ..InternetParams::default()
    };
    let topology = internet_like(params, 5);
    let mut net = topology.instantiate(InstantiateOptions::default());
    net.converge(RunLimits::none());
    for suspect in net.ases().collect::<Vec<_>>() {
        let findings = leak_gossip_audit(&net, suspect);
        assert!(findings.is_empty(), "false accusation against {suspect}: {findings:?}");
    }
}
