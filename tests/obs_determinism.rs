//! The telemetry layer's engine contract: metrics snapshots, timeline
//! windows, and JSONL traces from the sharded engine are byte-identical
//! to the serial engine's at shards 2, 4, and 8 — with exactly one
//! carve-out, `verify_cache_hits` (and the hit-ratio gauge derived from
//! it): per-shard verification caches legitimately see fewer hits than
//! the serial engine's network-wide cache.

use pvr::bgp::{
    internet_like, workload, Asn, DampeningPolicy, Edge, InstantiateOptions, InternetParams, Prefix,
};
use pvr::netsim::{Fault, FaultPlan, NodeId, RunLimits, SimDuration, SimTime, StopReason};
use std::sync::Arc;

/// The carve-out predicate: every series derived from cache hits, by
/// name (`pvr_router_verify_cache_hits_total`,
/// `pvr_verify_cache_hit_ratio`).
fn hit_series(name: &str) -> bool {
    name.contains("verify_cache_hit")
}

fn observed_options(signed: bool) -> InstantiateOptions {
    InstantiateOptions {
        seed: 71,
        signed,
        key_bits: 512,
        timeline_window: Some(SimDuration::from_millis(5)),
        journal_capacity: 32,
        ..Default::default()
    }
}

#[test]
fn telemetry_is_engine_invariant_modulo_cache_hits() {
    let params = InternetParams { tier1: 3, tier2: 8, stubs: 24, ..InternetParams::default() };
    let topology = internet_like(params, 71);
    for signed in [false, true] {
        let options = observed_options(signed);
        let mut serial = topology.instantiate(options);
        if signed {
            serial.install_origin_table(Arc::new(topology.origin_table()));
        }
        assert_eq!(serial.converge(RunLimits::none()), StopReason::Quiescent);
        let serial_snap = serial.metrics_snapshot(if signed { "signed" } else { "plain" });
        let serial_tl = serial.convergence_timeline().expect("timeline enabled");
        let serial_trace = serial.trace_jsonl();
        assert!(!serial_snap.series.is_empty());
        assert!(!serial_tl.windows.is_empty());
        assert!(!serial_trace.is_empty());

        for shards in [2usize, 4, 8] {
            let mut sharded = topology.instantiate_sharded(options, shards);
            if signed {
                sharded.install_origin_table(Arc::new(topology.origin_table()));
            }
            assert_eq!(sharded.converge(RunLimits::none()), StopReason::Quiescent);
            let snap = sharded.metrics_snapshot(if signed { "signed" } else { "plain" });
            let tl = sharded.convergence_timeline().expect("timeline enabled");

            // Metrics: identical modulo the carve-out series.
            assert_eq!(
                snap.without(hit_series),
                serial_snap.without(hit_series),
                "metrics diverge at {shards} shards (signed={signed})"
            );
            // Timeline: identical windows modulo the hits channel, and
            // the window *set* matches exactly (cell-existence
            // alignment: verify channels only record when calls > 0).
            assert_eq!(
                tl.zero_cache_hits(),
                serial_tl.zero_cache_hits(),
                "timeline diverges at {shards} shards (signed={signed})"
            );
            // Traces record verify *calls*, never hits, so they are
            // byte-identical with no carve-out at all.
            assert_eq!(
                sharded.trace_jsonl(),
                serial_trace,
                "trace diverges at {shards} shards (signed={signed})"
            );
            // The carve-out direction: per-shard caches can only lose
            // hits relative to the network-wide cache.
            if signed {
                let serial_hits =
                    serial_snap.counter_value("pvr_router_verify_cache_hits_total").unwrap();
                let sharded_hits =
                    snap.counter_value("pvr_router_verify_cache_hits_total").unwrap();
                assert!(sharded_hits <= serial_hits);
            }
        }
    }
}

/// The two endpoints of a topology edge, whichever flavor.
fn endpoints(edge: &Edge) -> (Asn, Asn) {
    match *edge {
        Edge::ProviderCustomer { provider, customer } => (provider, customer),
        Edge::Peering(a, b) => (a, b),
        Edge::PartialTransit { provider, customer, .. } => (provider, customer),
    }
}

#[test]
fn fault_telemetry_is_engine_invariant() {
    // A churn-plus-faults run in plain mode: no signing → no verify
    // cache → no carve-out anywhere. Snapshot, timeline, and trace must
    // be byte-identical across engines, *including* every fault counter
    // and the withdraw-storm channel the fault layer feeds.
    let params = InternetParams { tier1: 3, tier2: 8, stubs: 24, ..InternetParams::default() };
    let mut topology = internet_like(params, 73);
    let candidates: Vec<(Asn, Prefix)> = topology
        .ases()
        .flat_map(|a| topology.originated_by(a).iter().map(move |&p| (a, p)))
        .take(3)
        .collect();
    workload::continuous_churn(
        &mut topology,
        &candidates,
        24,
        SimDuration::from_millis(400),
        SimDuration::from_millis(30),
        73,
    );
    // Two faulted edges: a three-cycle flap fast enough to outrun the
    // dampening half-life (penalties 1000 → 1707 → 2207 > the 2000
    // suppress threshold) and a mid-churn session reset.
    let (fa, fb) = endpoints(&topology.edges()[0]);
    let (ra, rb) = endpoints(&topology.edges()[1]);
    let fault_plan = |node_of: &dyn Fn(Asn) -> NodeId| {
        let mut plan = FaultPlan::new();
        plan.flap_link(
            node_of(fa),
            node_of(fb),
            SimTime::ZERO + SimDuration::from_millis(500),
            SimDuration::from_millis(40),
            SimDuration::from_millis(100),
            3,
        );
        plan.push(
            SimTime::ZERO + SimDuration::from_millis(700),
            Fault::SessionReset { a: node_of(ra), b: node_of(rb) },
        );
        plan
    };
    let options = InstantiateOptions {
        seed: 73,
        mrai: Some(SimDuration::from_millis(5)),
        mrai_jitter: Some(SimDuration::from_millis(1)),
        dampening: Some(DampeningPolicy::default()),
        timeline_window: Some(SimDuration::from_millis(5)),
        journal_capacity: 32,
        ..Default::default()
    };

    let mut serial = topology.instantiate(options);
    serial.install_fault_plan(fault_plan(&|a| serial.node_of(a)));
    assert_eq!(serial.converge(RunLimits::none()), StopReason::Quiescent);
    let serial_snap = serial.metrics_snapshot("plain");
    let serial_tl = serial.convergence_timeline().expect("timeline enabled");
    let serial_trace = serial.trace_jsonl();

    // The fault layer actually showed up in the telemetry.
    for name in [
        "pvr_sim_link_down_total",
        "pvr_sim_session_resets_total",
        "pvr_router_withdraws_sent_total",
        "pvr_router_dampening_suppressed_total",
    ] {
        assert!(
            serial_snap.counter_value(name).unwrap_or(0) > 0,
            "{name} should be non-zero in a churn-plus-faults run"
        );
    }
    assert!(
        serial_tl.windows.iter().any(|w| w.withdraws > 0),
        "some timeline window should carry withdraw-storm activity"
    );

    for shards in [2usize, 4, 8] {
        let mut sharded = topology.instantiate_sharded(options, shards);
        sharded.install_fault_plan(fault_plan(&|a| sharded.node_of(a)));
        assert_eq!(sharded.converge(RunLimits::none()), StopReason::Quiescent);
        // Plain mode: full equality, no carve-out predicate in sight.
        assert_eq!(
            sharded.metrics_snapshot("plain"),
            serial_snap,
            "fault metrics diverge at {shards} shards"
        );
        assert_eq!(
            sharded.convergence_timeline().expect("timeline enabled"),
            serial_tl,
            "fault timeline diverges at {shards} shards"
        );
        assert_eq!(sharded.trace_jsonl(), serial_trace, "fault trace diverges at {shards} shards");
    }
}

#[test]
fn disabled_telemetry_stays_dark() {
    let params = InternetParams::default();
    let topology = internet_like(params, 72);
    let mut net = topology.instantiate(InstantiateOptions { seed: 72, ..Default::default() });
    assert_eq!(net.converge(RunLimits::none()), StopReason::Quiescent);
    // No timeline window → no recorder; no journal capacity → no trace.
    assert!(net.convergence_timeline().is_none());
    assert!(net.trace_jsonl().is_empty());
    // Metrics still work: counters come from the always-on stats structs.
    let snap = net.metrics_snapshot("plain");
    assert!(snap.counter_value("pvr_sim_events_total").unwrap() > 0);
}
