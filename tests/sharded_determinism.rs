//! The sharded engine's contract: byte-identical outputs to the serial
//! engine at any shard count — converged RIBs, event counts, simulator
//! stats, and per-router counters (modulo `verify_cache_hits`, whose
//! scope legitimately shrinks with per-shard caches). Exercised over
//! random topologies, random shard counts, signed mode, and `Malice`
//! route leaks, so the CI determinism gate rests on more than one
//! hand-picked workload.

use proptest::prelude::*;
use pvr::bgp::{
    internet_like, Asn, BgpRouter, Candidate, InstantiateOptions, InternetParams, Malice, Prefix,
    Topology,
};
use pvr::netsim::{RunLimits, StopReason};
use std::sync::Arc;

/// The converged Loc-RIB, fully materialized: every selected prefix with
/// its winning candidate (route attributes + learned-from neighbor).
fn rib_fingerprint(router: &BgpRouter) -> Vec<(Prefix, Candidate)> {
    router
        .selected_prefixes()
        .into_iter()
        .map(|p| (p, router.best_route(p).expect("selected prefix has a best route").clone()))
        .collect()
}

/// Converges `topology` on both engines and asserts every deterministic
/// observable matches. `leaker` optionally flips one AS to
/// `Malice::leak_all` before the run (in both engines, symmetrically).
fn assert_engines_agree(
    topology: &Topology,
    options: InstantiateOptions,
    shards: usize,
    leaker: Option<Asn>,
) {
    let mut serial = topology.instantiate(options);
    let mut sharded = topology.instantiate_sharded(options, shards);
    if options.signed {
        let table = Arc::new(topology.origin_table());
        serial.install_origin_table(Arc::clone(&table));
        sharded.install_origin_table(table);
    }
    if let Some(asn) = leaker {
        let malice = Malice { leak_all: true };
        serial.router_mut(asn).set_malice(malice.clone());
        sharded.router_mut(asn).set_malice(malice);
    }

    assert_eq!(serial.converge(RunLimits::none()), StopReason::Quiescent);
    assert_eq!(sharded.converge(RunLimits::none()), StopReason::Quiescent);

    // Identical event counts and simulator stats (events, delivered,
    // sent, bytes, drops — all of it).
    assert_eq!(serial.sim.stats(), sharded.sim.stats(), "{shards} shards");
    assert_eq!(serial.sim.now(), sharded.sim.now(), "{shards} shards");

    // Identical converged RIBs and per-router counters. verify_calls is
    // part of the shard-invariant projection: the checks *requested*
    // cannot depend on cache scope, only the hits can.
    for asn in topology.ases() {
        assert_eq!(
            rib_fingerprint(serial.router(asn)),
            rib_fingerprint(sharded.router(asn)),
            "{asn} RIB at {shards} shards"
        );
        assert_eq!(
            serial.router(asn).stats().shard_invariant(),
            sharded.router(asn).stats().shard_invariant(),
            "{asn} counters at {shards} shards"
        );
        // Per-shard caches can only lose reuse opportunities relative
        // to the serial engine's network-wide cache, never gain them.
        assert!(
            sharded.router(asn).stats().verify_cache_hits
                <= serial.router(asn).stats().verify_cache_hits,
            "{asn} at {shards} shards: sharded cache hits exceed serial"
        );
    }

    // Order-independent network totals (the satellite-3 pin): summed
    // counters agree however the routers are laid out.
    assert_eq!(
        serial.router_totals().shard_invariant(),
        sharded.router_totals().shard_invariant(),
        "{shards} shards"
    );
}

fn small_internet(seed: u64) -> Topology {
    internet_like(
        InternetParams {
            tier1: 3,
            tier2: 6,
            stubs: 16,
            t2_peering_prob: 0.25,
            ..InternetParams::default()
        },
        seed,
    )
}

#[test]
fn signed_run_identical_across_shard_counts() {
    let topology = small_internet(61);
    let options =
        InstantiateOptions { seed: 61, signed: true, key_bits: 512, ..Default::default() };
    for shards in [2, 4, 8] {
        assert_engines_agree(&topology, options, shards, None);
    }
}

#[test]
fn malicious_leaker_identical_across_shard_counts() {
    // A tier-2 AS leaking everything it hears changes propagation
    // substantially; the engines must still agree event for event.
    let topology = small_internet(62);
    let options = InstantiateOptions { seed: 62, ..Default::default() };
    for shards in [2, 5] {
        assert_engines_agree(&topology, options, shards, Some(Asn(101)));
    }
}

#[test]
fn signed_malicious_leaker_identical_across_shard_counts() {
    let topology = small_internet(63);
    let options =
        InstantiateOptions { seed: 63, signed: true, key_bits: 512, ..Default::default() };
    assert_engines_agree(&topology, options, 3, Some(Asn(102)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random topologies × random shard counts (1–8), plain mode, with
    /// a randomly placed route leaker on odd seeds.
    #[test]
    fn random_topology_matches_serial(
        seed in 0u64..10_000,
        tier1 in 2usize..=4,
        tier2 in 3usize..=8,
        stubs in 4usize..=20,
        shards in 1usize..=8,
    ) {
        let params = InternetParams {
            tier1,
            tier2,
            stubs,
            t2_peering_prob: 0.3,
            ..InternetParams::default()
        };
        let topology = internet_like(params, seed);
        let leaker = if seed % 2 == 1 { Some(Asn(100 + (seed % tier2 as u64) as u32)) } else { None };
        let options = InstantiateOptions { seed, ..Default::default() };
        assert_engines_agree(&topology, options, shards, leaker);
    }
}
