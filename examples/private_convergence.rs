//! Private verification as a network mode: a signed Internet-like
//! network converges twice — once bare, once with every contested
//! route selection verified inside batched GMW at calendar barriers —
//! and the privacy bill is read off the verifier's stats and timeline.
//!
//! Run with: `cargo run --release --example private_convergence`

use pvr::bgp::{internet_like, InstantiateOptions, InternetParams};
use pvr::netsim::{RunLimits, SimDuration};
use std::sync::Arc;

fn main() {
    let params = InternetParams { tier1: 3, tier2: 10, stubs: 40, ..InternetParams::default() };
    let topology = internet_like(params, 9);
    let origin_table = Arc::new(topology.origin_table());
    let base = InstantiateOptions {
        seed: 9,
        signed: true,
        key_bits: 512,
        timeline_window: Some(SimDuration::from_millis(5)),
        ..Default::default()
    };

    // Baseline: the signed substrate alone.
    let mut signed = topology.instantiate(base);
    signed.install_origin_table(Arc::clone(&origin_table));
    signed.converge(RunLimits::none());
    let signed_us = signed.sim.now().as_micros();

    // The same network with the private verifier on: every best-route
    // change with ≥ 2 candidates in the winning LOCAL_PREF tier queues
    // a claim, flushed through bit-sliced min + majority circuits at
    // the next quiescent instant (8 requests per 64-bit word here, to
    // make the batching visible on a small topology).
    let mut private = topology.instantiate(InstantiateOptions {
        private_verification: true,
        smc_lane_cap: 8,
        ..base
    });
    private.install_origin_table(origin_table);
    private.converge(RunLimits::none());
    let private_us = private.sim.now().as_micros();

    let verifier = private.private_verifier().expect("private verification enabled");
    let stats = verifier.stats();
    println!("private verification over {} ASes (lane cap 8):", topology.as_count());
    for (name, value) in stats.fields() {
        println!("  {name:<22} {value}");
    }
    println!(
        "  batch occupancy:       {:.1}%",
        100.0 * stats.lanes_occupied as f64 / stats.lane_slots.max(1) as f64
    );

    // The routing outcome is untouched — the verifier observes and
    // charges time, it never changes which route wins.
    for asn in topology.ases() {
        for prefix in signed.router(asn).selected_prefixes() {
            assert_eq!(
                signed.router(asn).best_route(prefix),
                private.router(asn).best_route(prefix),
                "private verification changed a route at {asn}"
            );
        }
    }
    println!("\nrouting outcomes identical to the signed baseline: yes");
    println!(
        "sim-time convergence: {:.1} ms signed -> {:.1} ms private ({:.0}x; the paper's",
        signed_us as f64 / 1e3,
        private_us as f64 / 1e3,
        private_us as f64 / signed_us.max(1) as f64
    );
    println!("\"SMC is too slow for routing\" argument, §3.1, priced into sim-time)");

    // The verifier keeps its own timeline — requests and batches per
    // 5 ms window, separate from the router channels.
    let timeline = verifier.timeline();
    println!("\nSMC activity per 5 ms sim-time window (first 8 busy windows):");
    println!("{:>10} {:>9} {:>8} {:>7} {:>7}", "window", "requests", "batches", "lanes", "rounds");
    for (start, cells) in timeline.cells().iter().take(8) {
        println!(
            "{:>7} ms {:>9} {:>8} {:>7} {:>7}",
            start / 1000,
            cells[pvr::obs::timeline::SMC_REQUESTS],
            cells[pvr::obs::timeline::SMC_BATCHES],
            cells[pvr::obs::timeline::SMC_LANES],
            cells[pvr::obs::timeline::SMC_ROUNDS],
        );
    }
}
