//! The detection matrix: every Byzantine strategy vs. every check.
//!
//! Exercises the paper's four properties (§2.3) across the full
//! adversary catalog, printing who detects what, with which evidence,
//! and how the third-party auditor rules. Also runs the same attacks
//! over the network simulator (messages, latency, gossip as traffic).
//!
//! Run with: `cargo run --example misbehavior`

use pvr::core::simproto::build_sim_round;
use pvr::core::{run_min_round, Figure1Bed, Misbehavior, Outcome, Verdict};

fn main() {
    println!("=== PVR detection matrix ===\n");
    let bed = Figure1Bed::build(&[2, 3, 5], 4242);
    println!("scenario: providers with path lengths 2/3/5, A promised B the shortest\n");

    let victim = bed.ns[0];
    let behaviors: Vec<(&str, Option<Misbehavior>)> = vec![
        ("honest", None),
        ("export-longer", Some(Misbehavior::ExportLonger)),
        ("suppress-input", Some(Misbehavior::SuppressInput { victim })),
        ("deny-all", Some(Misbehavior::DenyAll)),
        ("equivocate", Some(Misbehavior::Equivocate { victim })),
        ("non-monotone-bits", Some(Misbehavior::NonMonotoneBits)),
        ("fabricate-export", Some(Misbehavior::FabricateExport)),
        ("refuse-reveal", Some(Misbehavior::RefuseReveal { victim })),
        ("corrupt-opening", Some(Misbehavior::CorruptOpening { victim })),
    ];

    println!(
        "{:<20} {:>9} {:>10} {:>9}  detectors / evidence",
        "behavior", "detected", "evidence", "guilty"
    );
    println!("{}", "-".repeat(78));
    for (name, behavior) in &behaviors {
        let report = run_min_round(&bed, behavior.clone());
        let detectors: Vec<String> = report
            .outcomes
            .iter()
            .filter(|(_, o)| o.detected())
            .map(|(asn, o)| match o {
                Outcome::Accuse(e) => format!("{asn}:{}", e.kind()),
                Outcome::Suspect(s) => format!("{asn}:suspect({s:?})"),
                Outcome::Accept => unreachable!(),
            })
            .collect();
        let mut all = detectors;
        if report.gossip_evidence.is_some() {
            all.push("gossip:equivocation".to_string());
        }
        let guilty = report.verdicts.iter().filter(|(_, v)| *v == Verdict::Guilty).count();
        println!(
            "{:<20} {:>9} {:>10} {:>9}  {}",
            name,
            report.detected(),
            report.verdicts.len(),
            guilty,
            if all.is_empty() { "-".to_string() } else { all.join(", ") }
        );

        // The paper's properties, asserted:
        match behavior {
            None => assert!(report.clean(), "Accuracy violated"),
            Some(Misbehavior::RefuseReveal { .. }) | Some(Misbehavior::CorruptOpening { .. }) => {
                // Omission faults: Detection without transferable Evidence.
                assert!(report.detected());
                assert!(!report.convicted());
            }
            Some(_) => {
                assert!(report.detected(), "{name}: Detection violated");
                assert!(report.convicted(), "{name}: Evidence violated");
                for (_, v) in &report.verdicts {
                    assert_eq!(*v, Verdict::Guilty, "{name}: weak accusation");
                }
            }
        }
    }

    println!("\n--- the same attacks as live network traffic ---\n");
    for (name, behavior) in &behaviors {
        let mut round = build_sim_round(&bed, behavior.clone(), 99);
        let report = round.run();
        println!(
            "{:<20} detected={:<5} messages={:<4} bytes={}",
            name,
            report.detected(),
            report.messages,
            report.bytes
        );
        match behavior {
            None => assert!(!report.detected()),
            Some(_) => assert!(report.detected()),
        }
    }

    println!("\nAll four §2.3 properties verified: Detection, Evidence,");
    println!("Accuracy (honest runs are clean, forged evidence is rejected),");
    println!("and Confidentiality (see the E7 integration tests).");
}
