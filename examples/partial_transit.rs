//! The Figure 2 scenario: a multi-operator route-flow graph with
//! selective structural disclosure.
//!
//! A's promise to B: "I will export some route via N2, …, Nk unless N1
//! provides a shorter route" — the partial-transit-flavored policy of
//! §3.5. The graph has two operators (a `min` over r2..rk and a
//! `ShorterOf` choice against r1); B verifies the *structure* via §3.7
//! graph navigation without ever seeing the providers' route values,
//! then verifies the round outcome.
//!
//! Run with: `cargo run --example partial_transit`

use pvr::bgp::Asn;
use pvr::core::{Figure1Bed, VisibleGraph};
use pvr::mht::Label;
use pvr::rfg::{AccessPolicy, OperatorKind, Promise};
use std::collections::BTreeSet;

fn main() {
    println!("=== PVR on a multi-operator graph (Figure 2) ===\n");

    // N1 offers a 3-hop route; N2/N3 offer 3 and 4 hops. The promise
    // prefers N2..N3 on ties, so the honest export is via N2.
    let bed = Figure1Bed::build_figure2(&[3, 3, 4], 77);
    println!(
        "graph: {} variables, {} operators",
        bed.graph.vars().count(),
        bed.graph.ops().count()
    );

    // Static check (§2.2): does the graph implement the promise?
    let promise = Promise::PreferUnlessShorter {
        fallback: bed.ns[0],
        preferred: bed.ns[1..].iter().copied().collect::<BTreeSet<Asn>>(),
    };
    assert!(promise.implemented_by(&bed.graph, bed.b));
    println!("static check: graph implements the Figure 2 promise");

    // …and is it verifiable under the paper's access policy (§4
    // "minimum access")?
    let everyone: Vec<Asn> = bed.ns.iter().copied().chain([bed.b]).collect();
    let alpha = AccessPolicy::paper_example(&bed.graph, &everyone);
    assert!(promise.verifiable_under(&bed.graph, &alpha, bed.b));
    println!("access check: α grants enough visibility to verify it\n");

    // A commits and evaluates.
    let committer = bed.honest_committer();
    let exported = committer.export_route(bed.b).expect("an export exists");
    println!("A evaluated its graph; exports {} to {}", exported.route, bed.b);
    assert_eq!(exported.route.path.asns()[1], bed.ns[1], "tie goes to N2 per the promise");

    // B navigates the committed graph (§3.7) without seeing any route
    // values except its own output.
    let reveals = committer.graph_disclosure_for(bed.b, &alpha);
    println!("A disclosed {} vertex records to B", reveals.len());
    let visible = VisibleGraph::reconstruct(&reveals, &committer.signed_root().root)
        .expect("all proofs bind to the signed root");

    let out = Label::Var(bed.output_var.0);
    let inputs: Vec<Label> = bed.input_vars.iter().map(|v| Label::Var(v.0)).collect();
    assert!(visible.check_figure2_promise(&out, &inputs[0], &inputs[1..]));
    println!("B verified the two-operator structure against the commitment");

    // Confidentiality: B saw no provider route values.
    for (i, l) in inputs.iter().enumerate() {
        let v = visible.vertex(l).expect("structure visible");
        assert!(v.content.is_none(), "input {} content leaked", i + 1);
    }
    println!("B could NOT open any r_i — only structure was revealed");

    // Each provider can independently verify the same structure and
    // open exactly its own input.
    for (i, &n) in bed.ns.iter().enumerate() {
        let reveals = committer.graph_disclosure_for(n, &alpha);
        let visible = VisibleGraph::reconstruct(&reveals, &committer.signed_root().root).unwrap();
        assert!(visible.check_figure2_promise(&out, &inputs[0], &inputs[1..]));
        let own = visible.vertex(&inputs[i]).unwrap();
        assert!(own.content.is_some(), "{n} must see its own variable");
        println!("{n} verified the structure and opened only r{}", i + 1);
    }

    // For contrast: a *different* wiring would not pass B's check.
    assert!(!visible.check_single_operator_promise(&out, &OperatorKind::MinPathLen, &inputs));
    println!("\nsanity: the same disclosure does NOT pass as a plain min graph");
    println!("=== done ===");
}
