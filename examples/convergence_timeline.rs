//! Convergence timeline of a signed Internet-like network, plus a
//! hijack campaign whose detection latency is read straight off the
//! exported metrics — the observability layer end to end.
//!
//! Run with: `cargo run --release --example convergence_timeline`

use pvr::attack::{Campaign, CampaignConfig};
use pvr::bgp::{internet_like, InstantiateOptions, InternetParams};
use pvr::netsim::{RunLimits, SimDuration};
use pvr::obs::{MetricsRegistry, Value};
use std::sync::Arc;

fn main() {
    // A signed Internet-like network with the telemetry layer on:
    // 5 ms sim-time timeline windows and a 32-event journal per router.
    let params = InternetParams { tier1: 3, tier2: 10, stubs: 40, ..InternetParams::default() };
    let topology = internet_like(params, 9);
    let mut net = topology.instantiate(InstantiateOptions {
        seed: 9,
        signed: true,
        key_bits: 512,
        timeline_window: Some(SimDuration::from_millis(5)),
        journal_capacity: 32,
        ..Default::default()
    });
    net.install_origin_table(Arc::new(topology.origin_table()));
    net.converge(RunLimits::none());

    let timeline = net.convergence_timeline().expect("timeline enabled");
    println!("convergence timeline (signed substrate, 5 ms sim-time windows):");
    print!("{}", timeline.render_table());

    let trace = net.trace_jsonl();
    println!("\nlast 3 of {} journaled events:", trace.lines().count());
    let lines: Vec<&str> = trace.lines().collect();
    for line in lines.iter().rev().take(3).rev() {
        println!("  {line}");
    }

    // A hijack campaign: per-strategy detection latency lands in the
    // exported histograms, labelled strategy × security mode.
    let report = Campaign::new(CampaignConfig::quick(9)).run();
    println!("\n{}", report.render_matrix());

    let mut registry = MetricsRegistry::new();
    report.export_detection_latency(&mut registry);
    println!("detection latency, read off the metrics snapshot (sim-time):");
    for s in &registry.snapshot().series {
        let Value::Histogram(h) = &s.value else { continue };
        let labels: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let mean_ms = h.sum() / h.count().max(1) / 1000;
        println!("  {{{}}}: {} detection(s), mean {} ms", labels.join(", "), h.count(), mean_ms);
    }
    println!("\n(the 10 ms default link latency is visible: in-band hijack detection");
    println!(" happens one hop out, at ~10 ms of sim-time)");
}
