//! Quickstart: the paper's Figure 1 scenario, end to end.
//!
//! Network A has neighbors N1..N3 and customer B. The N_i advertise
//! routes to prefix 10.0.0.0/8 with different AS-path lengths; A has
//! promised B the shortest of them. This example runs one honest PVR
//! round and one cheating round, printing each phase.
//!
//! Run with: `cargo run --example quickstart`

use pvr::core::{run_min_round, Figure1Bed, Misbehavior, Outcome};

fn main() {
    println!("=== PVR quickstart: Figure 1 ===\n");

    // N1, N2, N3 advertise routes of AS-path lengths 2, 3, 4.
    let bed = Figure1Bed::build(&[2, 3, 4], 2026);
    println!("cast: A = {}, B = {}, providers = {:?}", bed.a, bed.b, bed.ns);
    for &n in &bed.ns {
        let sr = bed.input_of(n);
        println!("  {n} advertises {} (attested, {} signatures)", sr.route, sr.chain().len());
    }

    // --- Honest round -------------------------------------------------
    println!("\n--- honest round ---");
    let committer = bed.honest_committer();
    println!("A commits to its decision: root = {}", committer.signed_root().root);
    println!(
        "A's bit vector claims min = {:?}",
        pvr::core::claimed_min(
            &(1..=bed.params.max_path_len as u32)
                .map(|i| committer.reveal_bit(i).unwrap().bit().unwrap())
                .collect::<Vec<_>>(),
        )
    );

    let report = run_min_round(&bed, None);
    for (asn, outcome) in &report.outcomes {
        let verdict = match outcome {
            Outcome::Accept => "accepts".to_string(),
            other => format!("flags {other:?}"),
        };
        println!("  {asn} {verdict}");
    }
    assert!(report.clean());
    println!("honest round: clean — Accuracy holds.");

    // What did each participant's disclosure cost on the wire?
    for (asn, t) in &report.transcripts {
        println!("  {asn} received {} bytes total", t.total_bytes());
    }

    // --- Cheating round -----------------------------------------------
    println!("\n--- cheating round: A exports a longer route ---");
    let report = run_min_round(&bed, Some(Misbehavior::ExportLonger));
    assert!(report.detected(), "Detection property");
    assert!(report.convicted(), "Evidence property");
    for (accuser, verdict) in &report.verdicts {
        println!("  {accuser} presented evidence; auditor says: {verdict:?}");
    }
    let b_evidence = report.outcomes[&bed.b].evidence().unwrap();
    println!("  B's evidence kind: {}", b_evidence.kind());
    println!("cheating round: detected, evidence upheld by a third party.");

    println!("\nPrivacy note: N1 never learned whether N2/N3 even advertised");
    println!("a route, and B learned nothing beyond the (shortest) route it");
    println!("receives via standard BGP anyway — see the confidentiality");
    println!("integration tests and `cargo run --example partial_transit`.");
}
