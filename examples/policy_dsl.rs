//! The §4 "language support" challenge: compile a high-level policy
//! description into a route-flow graph, check it against a promise,
//! and run a committed PVR round over it.
//!
//! Run with: `cargo run --example policy_dsl`

use pvr::bgp::Asn;
use pvr::core::{Committer, PvrParams, RoundContext};
use pvr::crypto::HmacDrbg;
use pvr::rfg::{compile_policy, Promise};
use std::collections::BTreeSet;

fn main() {
    println!("=== Policy DSL → route-flow graph → PVR round ===\n");

    // The Figure 2 contract, written as an operator pipeline instead of
    // hand-built graph code.
    let program = "\
# Figure 2: export some route via N2..N3 unless N1 is strictly shorter
input r1 from AS1
input r2 from AS2
input r3 from AS3
let m = min(r2, r3)
output shorter_of(r1, m) to AS200
";
    println!("policy program:\n{program}");
    let policy = compile_policy(program).expect("compiles");
    println!(
        "compiled: {} variables, {} operators",
        policy.graph.vars().count(),
        policy.graph.ops().count()
    );

    // Static promise check straight off the compiled graph.
    let promise = Promise::PreferUnlessShorter {
        fallback: Asn(1),
        preferred: [Asn(2), Asn(3)].into_iter().collect::<BTreeSet<_>>(),
    };
    assert!(promise.implemented_by(&policy.graph, Asn(200)));
    println!("static check: compiled graph implements the Figure 2 promise\n");

    // Run a committed round over it, with inputs built by the harness.
    let bed = pvr::core::Figure1Bed::build_figure2(&[3, 3, 5], 99);
    let mut rng = HmacDrbg::from_u64_labeled(99, "dsl-example");
    let committer = Committer::new(
        bed.a_identity(),
        RoundContext { prefix: bed.prefix, epoch: 1 },
        PvrParams::default(),
        policy.graph,
        bed.inputs.clone(),
        &bed.ns,
        &mut rng,
    );
    let exported = committer.export_route(bed.b).expect("an export");
    println!("A evaluated the compiled policy and exports {}", exported.route);
    assert_eq!(
        exported.route.path.asns()[1],
        Asn(2),
        "tie between N1 and N2 goes to the preferred side"
    );

    // A second program showing filters: EU-only partial transit with a
    // path-length guard.
    let program2 = "\
input r1 from AS1
input r2 from AS2
let merged = union(r1, r2)
let eu = keep_community(65000:1, merged)
let near = within_hops(1, eu)
output pick_one(near) to AS300
";
    let policy2 = compile_policy(program2).expect("compiles");
    println!(
        "\nsecond program compiled: {} operators (filters + ε-guard)",
        policy2.graph.ops().count()
    );

    // Error reporting has line numbers:
    let bad = "input r1 from AS1\nlet x = teleport(r1)\n";
    let e = compile_policy(bad).unwrap_err();
    println!("\nerror reporting: {e}");

    println!("\n=== done ===");
}
