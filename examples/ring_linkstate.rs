//! The §3.2 link-state variant with ring signatures.
//!
//! "Suppose we apply PVR to a link-state protocol that only exports
//! whether a path exists. Then the N_i can use a ring signature scheme,
//! such as [20], to sign the statement 'A route exists'. Thus, B could
//! tell that some N_i had provided a route, but it could not tell which
//! one."
//!
//! This example runs the existential-operator protocol where the
//! route-provider's identity is hidden behind a Rivest–Shamir–Tauman
//! ring signature over all of A's upstream neighbors.
//!
//! Run with: `cargo run --example ring_linkstate`

use pvr::crypto::{ring_sign, ring_verify, HmacDrbg, Identity, RsaPublicKey};

fn main() {
    println!("=== Link-state PVR with ring signatures (§3.2) ===\n");

    let mut rng = HmacDrbg::from_u64_labeled(1234, "ring-example");

    // A's upstream neighborhood: five providers, each with a key pair.
    let k = 5;
    let providers: Vec<Identity> = (1..=k).map(|i| Identity::generate(i, 512, &mut rng)).collect();
    let ring: Vec<RsaPublicKey> = providers.iter().map(|p| p.public().clone()).collect();
    println!("ring of {k} providers established (RSA-512 for demo speed)");

    // The statement the paper has the N_i sign.
    let statement = b"A route to 10.0.0.0/8 exists at epoch 1";

    // Secretly, provider #3 (index 2) is the one with the route.
    let signer_index = 2;
    let sig =
        ring_sign(statement, &ring, signer_index, providers[signer_index].private_key(), &mut rng)
            .expect("signing succeeds");
    println!(
        "one provider signed the statement ({} bytes of signature material)",
        sig.v.len() * (1 + sig.xs.len())
    );

    // B verifies: SOME ring member signed…
    ring_verify(statement, &ring, &sig).expect("ring signature verifies");
    println!("B verified: some provider vouches that a route exists");

    // …but the signature is structurally identical regardless of which
    // member signed: B cannot tell. Demonstrate by having every member
    // sign and checking all signatures verify with identical shape.
    println!("\nanonymity check: signatures from every possible signer");
    for (i, provider) in providers.iter().enumerate().take(k as usize) {
        let s = ring_sign(statement, &ring, i, provider.private_key(), &mut rng).unwrap();
        ring_verify(statement, &ring, &s).expect("verifies");
        assert_eq!(s.xs.len(), sig.xs.len());
        assert_eq!(s.v.len(), sig.v.len());
        println!(
            "  signer {}: verifies, {} ring elements, indistinguishable shape",
            i + 1,
            s.xs.len()
        );
    }

    // Integrity: the statement is bound.
    let forged = ring_verify(b"A route to 192.168.0.0/16 exists", &ring, &sig);
    assert!(forged.is_err());
    println!("\nbinding check: altering the statement breaks the signature");

    // Ring membership is bound too: a different neighborhood rejects it.
    let mut other_rng = HmacDrbg::from_u64_labeled(999, "other-ring");
    let outsiders: Vec<RsaPublicKey> =
        (10..10 + k).map(|i| Identity::generate(i, 512, &mut other_rng).public().clone()).collect();
    assert!(ring_verify(statement, &outsiders, &sig).is_err());
    println!("membership check: the signature is bound to A's neighbor ring");

    println!("\n=== done: existence proven, provider identity protected ===");
}
