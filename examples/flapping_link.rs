//! A flapping link torn down and brought back through a seeded fault
//! plan: watch the withdraw storm roll through the convergence
//! timeline, route-flap dampening park the fastest flapper, and the
//! network recover to exactly its never-faulted routes.
//!
//! Run with: `cargo run --release --example flapping_link`

use pvr::bgp::{internet_like, DampeningPolicy, Edge, InstantiateOptions, InternetParams};
use pvr::netsim::{FaultPlan, RunLimits, SimDuration, SimTime};

fn main() {
    // An Internet-like network with the failure-semantics stack on:
    // MRAI batching (5 ms + 1 ms jitter), RFC 2439 dampening at default
    // thresholds, and 5 ms sim-time timeline windows.
    let params = InternetParams { tier1: 3, tier2: 8, stubs: 24, ..InternetParams::default() };
    let topology = internet_like(params, 8);
    let options = InstantiateOptions {
        seed: 8,
        mrai: Some(SimDuration::from_millis(5)),
        mrai_jitter: Some(SimDuration::from_millis(1)),
        dampening: Some(DampeningPolicy::default()),
        timeline_window: Some(SimDuration::from_millis(5)),
        ..Default::default()
    };

    // The never-faulted baseline: converge once, remember every
    // selected route.
    let mut baseline = topology.instantiate(options);
    baseline.converge(RunLimits::none());
    let mut baseline_routes = Vec::new();
    for a in topology.ases() {
        for p in baseline.router(a).selected_prefixes() {
            baseline_routes.push((
                a,
                p,
                baseline.router(a).best_route(p).expect("selected").clone(),
            ));
        }
    }
    println!(
        "baseline: {} selected routes across {} ASes",
        baseline_routes.len(),
        topology.ases().count()
    );

    // The fault plan: the first provider-customer edge flaps three
    // times — 40 ms down per 100 ms cycle, fast enough to outrun the
    // 200 ms dampening half-life (penalties 1000 → 1707 → 2207, past
    // the 2000 suppress threshold on the third teardown).
    let (a, b) = match topology.edges()[0] {
        Edge::ProviderCustomer { provider, customer } => (provider, customer),
        Edge::Peering(x, y) => (x, y),
        Edge::PartialTransit { provider, customer, .. } => (provider, customer),
    };
    let mut net = topology.instantiate(options);
    let mut plan = FaultPlan::new();
    plan.flap_link(
        net.node_of(a),
        net.node_of(b),
        SimTime::ZERO + SimDuration::from_millis(500),
        SimDuration::from_millis(40),
        SimDuration::from_millis(100),
        3,
    );
    net.install_fault_plan(plan);
    println!("flapping AS{} <-> AS{}: 3 cycles, 40 ms down per 100 ms, from t=500 ms", a.0, b.0);

    net.converge(RunLimits::none());

    // The storm, on the timeline: each teardown floods withdraws, each
    // recovery re-announces; windows with withdraw activity are the
    // storm rolling through.
    let timeline = net.convergence_timeline().expect("timeline enabled");
    println!("\nwindows with withdraw activity (5 ms sim-time windows):");
    for w in timeline.windows.iter().filter(|w| w.withdraws > 0) {
        println!(
            "  t={:>4} ms: {:>3} withdraws, {:>4} rib changes, {:>5} events",
            w.start_us / 1000,
            w.withdraws,
            w.rib_churn,
            w.events
        );
    }

    let stats = net.sim.stats();
    let totals = topology.ases().map(|a| net.router(a).stats().clone()).fold(
        pvr::bgp::RouterStats::default(),
        |mut acc, s| {
            acc.add(&s);
            acc
        },
    );
    println!("\nfault counters: {} link-down, {} link-up", stats.link_down, stats.link_up);
    println!(
        "router totals: {} withdraws flooded, {} announcements parked by dampening",
        totals.withdraws_sent, totals.dampening_suppressed
    );

    // The recovery contract: once the schedule ends and the reuse
    // timer releases the parked routes, the RIBs are exactly the
    // never-faulted baseline's.
    let intact =
        baseline_routes.iter().filter(|(a, p, c)| net.router(*a).best_route(*p) == Some(c)).count();
    println!(
        "\nrecovered: {intact}/{} routes equal the never-faulted baseline",
        baseline_routes.len()
    );
    assert_eq!(intact, baseline_routes.len(), "recovery must be exact");
}
