//! An adversarial campaign end to end: sweep the attack catalog over an
//! Internet-like topology under plain BGP, S-BGP+ROV, and PVR, then
//! zoom into the one attack signed infrastructure cannot see — the
//! route leak — and show the gossip audit catching it.
//!
//! Run with: `cargo run --release --example hijack_campaign`

use pvr::attack::{leak_gossip_audit, AttackKind, Campaign, CampaignConfig, SecurityMode};
use pvr::bgp::{InstantiateOptions, Malice};
use pvr::netsim::RunLimits;

fn main() {
    println!("=== PVR attack campaign ===\n");
    let config = CampaignConfig::quick(12);
    let campaign = Campaign::new(config);
    let placement = campaign.placements()[0];
    println!(
        "attacker {} vs victim {} ({}), {} cells on the parallel sweep\n",
        placement.attacker,
        placement.victim,
        placement.victim_prefix,
        campaign.cell_count()
    );
    let report = campaign.run();
    print!("{}", report.render_matrix());

    println!("\nheadlines:");
    let hijack_like = [AttackKind::Hijack, AttackKind::Attestation, AttackKind::Leak];
    println!(
        "  plain BGP      : min poisoned fraction {:.0}% across hijack-family attacks, 0 detected",
        report.min_poisoned(&hijack_like, SecurityMode::Plain) * 100.0
    );
    println!(
        "  signed (S-BGP) : leak still poisons {:.0}% and detection rate is {:.0}%",
        report.min_poisoned(&[AttackKind::Leak], SecurityMode::Signed) * 100.0,
        report.detection_rate(&[AttackKind::Leak], SecurityMode::Signed) * 100.0
    );
    let verifiable = [AttackKind::Attestation, AttackKind::Promise, AttackKind::Protocol];
    println!(
        "  pvr            : {:.0}% of attestation/promise/protocol attacks detected",
        report.detection_rate(&verifiable, SecurityMode::Pvr) * 100.0
    );

    // Zoom in: mount the leak by hand and print the gossip evidence.
    println!("\n--- the route leak, up close ---\n");
    let topology = pvr::bgp::internet_like(
        pvr::bgp::InternetParams {
            tier1: 2,
            tier2: 4,
            stubs: 6,
            t2_peering_prob: 0.3,
            ..pvr::bgp::InternetParams::default()
        },
        12,
    );
    let attacker = placement.attacker;
    let mut net = topology.instantiate(InstantiateOptions::default());
    net.router_mut(attacker).set_malice(Malice { leak_all: true });
    net.converge(RunLimits::none());
    let evidence = leak_gossip_audit(&net, attacker);
    println!("gossip audit against {attacker}: {} valley(s) found", evidence.len());
    for e in evidence.iter().take(5) {
        println!(
            "  {} reports: {} exported {} (learned from {}) uphill — path {:?}",
            e.reporter, attacker, e.prefix, e.upstream, e.path
        );
    }
    assert!(!evidence.is_empty(), "the leak must be visible to the audit");
    println!("\neach piece of evidence pools only what its two reporters already knew —");
    println!("no private relationship is revealed to anyone it wasn't already visible to.");
}
