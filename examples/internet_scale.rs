//! PVR at Internet scale (experiment E8's scenario as a demo).
//!
//! Builds an Internet-like AS topology (tier-1 clique, multihomed
//! tier-2, stubs originating prefixes), converges BGP with S-BGP
//! attestations over the deterministic simulator, then runs a PVR
//! round at a chosen transit AS using the routes *actually* in its
//! Adj-RIB-In — closing the loop between the routing substrate and the
//! verification protocol.
//!
//! Run with: `cargo run --release --example internet_scale`

use pvr::bgp::{internet_like, Asn, BgpRouter, InstantiateOptions, InternetParams};
use pvr::core::{verify_as_provider, verify_as_receiver, Committer, PvrParams, RoundContext};
use pvr::crypto::HmacDrbg;
use pvr::netsim::RunLimits;
use pvr::rfg::figure1_graph;
use std::collections::BTreeMap;

fn main() {
    println!("=== PVR on an Internet-like topology ===\n");

    let params = InternetParams {
        tier1: 4,
        tier2: 10,
        stubs: 30,
        t2_peering_prob: 0.25,
        ..InternetParams::default()
    };
    let topology = internet_like(params, 7);
    println!(
        "topology: {} ASes, {} relationship edges",
        topology.as_count(),
        topology.edge_count()
    );

    // Converge with S-BGP signing enabled.
    let mut net = topology.instantiate(InstantiateOptions {
        seed: 7,
        signed: true,
        key_bits: 512,
        ..Default::default()
    });
    let stop = net.converge(RunLimits::none());
    let stats = net.sim.stats().clone();
    println!("convergence: {stop:?} after {} events", stats.events);
    println!(
        "  updates delivered: {}, bytes on the wire: {} ({:.1} KiB)",
        stats.delivered,
        stats.bytes_sent,
        stats.bytes_sent as f64 / 1024.0
    );

    let mut failures = 0u64;
    let mut accepted = 0u64;
    for asn in net.ases().collect::<Vec<_>>() {
        let r = net.router(asn);
        failures += r.stats().attestation_failures;
        accepted += r.stats().routes_accepted;
    }
    println!("  routes accepted: {accepted}, attestation failures: {failures}");
    assert_eq!(failures, 0, "honest network must have no attestation failures");

    // Pick a tier-2 AS with several providers as "A" and one of its
    // customers as "B", and verify a real prefix decision.
    let a = Asn(100);
    let a_router: &BgpRouter = net.router(a);
    let prefix =
        a_router.selected_prefixes().into_iter().next().expect("A selected at least one prefix");
    let providers: Vec<Asn> = topology
        .neighbor_roles(a)
        .into_iter()
        .filter(|(n, _)| a_router.received_chain(*n, prefix).is_some())
        .map(|(n, _)| n)
        .collect();
    println!("\nPVR round at {a} for {prefix}: {} providers hold routes", providers.len());

    // Inputs straight from A's Adj-RIB-In.
    let inputs: BTreeMap<Asn, Vec<_>> = providers
        .iter()
        .map(|&n| (n, vec![a_router.received_chain(n, prefix).unwrap().clone()]))
        .collect();
    for (&n, srs) in &inputs {
        println!("  {n} advertised {}", srs[0].route);
    }

    // B is a synthetic customer for the demo round; in the promise, A
    // commits to exporting the shortest provider route.
    let b = Asn(9999);
    let (graph, _, _, _) = figure1_graph(&providers, b);
    let keys = net.keystore().expect("signed mode").clone();
    // A's identity: regenerate deterministically exactly as the
    // instantiation did.
    let mut idrng = HmacDrbg::from_u64_labeled(7, "bgp-identities");
    let mut a_identity = None;
    for asn in topology.ases() {
        let id = pvr::crypto::Identity::generate(asn.principal(), 512, &mut idrng);
        if asn == a {
            a_identity = Some(id);
        }
    }
    let a_identity = a_identity.unwrap();

    let round = RoundContext { prefix, epoch: 1 };
    let pvr_params = PvrParams { max_path_len: 16 };
    let mut rng = HmacDrbg::from_u64_labeled(7, "internet-pvr");
    let committer = Committer::new(
        &a_identity,
        round.clone(),
        pvr_params,
        graph,
        inputs.clone(),
        &providers,
        &mut rng,
    );
    println!("\nA committed: root = {}", committer.signed_root().root);

    // Each provider verifies its bit.
    let mut overhead = 0usize;
    for &n in &providers {
        let d = committer.disclosure_for_provider(n);
        overhead += pvr::netsim::Payload::wire_size(&d);
        let outcome = verify_as_provider(a, &round, &pvr_params, &inputs[&n], &d, &keys);
        assert!(outcome.is_accept(), "{n}: {outcome:?}");
        println!("  {n} verified its bit: accept");
    }
    let d = committer.disclosure_for_receiver(b);
    overhead += pvr::netsim::Payload::wire_size(&d);
    let outcome = verify_as_receiver(b, a, &round, &pvr_params, &d, &keys);
    println!("  {b} (receiver) outcome: {outcome:?}");

    println!("\nPVR overhead for this decision: {overhead} bytes of disclosures");
    println!("(compare: the BGP updates that built this RIB cost {} bytes)", stats.bytes_sent);
    println!("\n=== done ===");
}
